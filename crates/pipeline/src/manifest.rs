//! Batch manifests: what to compile, on what, with which predictor.
//!
//! A manifest is a JSON document listing jobs:
//!
//! ```json
//! {
//!   "jobs": [
//!     { "kernel": "app:ATA", "arch": "S4" },
//!     { "kernel": "gemm:32", "arch": "SL8", "mode": "pareto" },
//!     { "name": "mine", "kernel": "file:kernel.c", "arch": "file:arch.json",
//!       "predictor": "oracle" }
//!   ]
//! }
//! ```
//!
//! Kernel references:
//! * `app:<CODE>` — one of the paper's eleven applications (also
//!   accepted bare, e.g. `"ATA"`);
//! * `gemm:<N>` / `vecsum:<N>` — parameterized micro-kernels;
//! * `file:<path>` (or any value ending in `.c`) — a `#pragma PTMAP`
//!   C-dialect source file.
//!
//! Architecture references: a preset name (`S4`, `R4`, `H6`, `SL8`,
//! `HReA4`) or `file:<path>` for a JSON architecture description.
//!
//! Predictors: `analytical` (default), `oracle`, or `gnn:<model.json>`
//! for a trained checkpoint saved by the bench harness.

use crate::hash::sha256_hex;
use ptmap_arch::{presets, CgraArch};
use ptmap_core::{PtMap, PtMapConfig};
use ptmap_eval::{AnalyticalPredictor, GnnPredictor, IiPredictor, OraclePredictor, RankMode};
use ptmap_gnn::PtMapGnn;
use ptmap_governor::faultpoint;
use ptmap_ir::Program;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// One job line of a manifest (unresolved references).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Optional display name; defaults to `<kernel>@<arch>`.
    #[serde(default)]
    pub name: Option<String>,
    /// Kernel reference (see module docs).
    pub kernel: String,
    /// Architecture reference.
    pub arch: String,
    /// Predictor reference (`analytical` when omitted).
    #[serde(default)]
    pub predictor: Option<String>,
    /// Ranking mode: `performance` (default) or `pareto`.
    #[serde(default)]
    pub mode: Option<String>,
}

/// A parsed manifest.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Manifest {
    /// The jobs, in submission order.
    pub jobs: Vec<JobSpec>,
}

impl Manifest {
    /// Parses a manifest from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("manifest: {e}"))
    }

    /// Resolves every job reference (kernels, architectures, models).
    pub fn resolve(&self) -> Result<Vec<Job>, String> {
        self.jobs.iter().map(Job::resolve).collect()
    }
}

/// The II predictor a job compiles with.
#[derive(Debug, Clone)]
pub enum PredictorSpec {
    /// MII analytical model.
    Analytical,
    /// The modulo scheduler itself (exact, slow).
    Oracle,
    /// A trained GNN checkpoint.
    Gnn(Box<PtMapGnn>),
}

impl PredictorSpec {
    /// Parses a predictor reference.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "analytical" => Ok(PredictorSpec::Analytical),
            "oracle" => Ok(PredictorSpec::Oracle),
            other => match other.strip_prefix("gnn:") {
                Some(path) => {
                    faultpoint::fail_point(faultpoint::sites::PREDICTOR_LOAD)
                        .map_err(|e| format!("reading model {path}: {e}"))?;
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("reading model {path}: {e}"))?;
                    let model: PtMapGnn =
                        serde_json::from_str(&text).map_err(|e| format!("model {path}: {e}"))?;
                    Ok(PredictorSpec::Gnn(Box::new(model)))
                }
                None => Err(format!(
                    "unknown predictor {other} (expected analytical, oracle, or gnn:<model.json>)"
                )),
            },
        }
    }

    /// [`PredictorSpec::parse`] with graceful degradation: a GNN
    /// checkpoint that cannot be read or parsed falls back to the
    /// analytical predictor, returning the reason so the caller records
    /// the degradation instead of failing the job. Unknown predictor
    /// *names* still error — a typo must not silently change results.
    pub fn parse_degrading(text: &str) -> Result<(Self, Option<String>), String> {
        match Self::parse(text) {
            Ok(spec) => Ok((spec, None)),
            Err(e) if text.starts_with("gnn:") => Ok((
                PredictorSpec::Analytical,
                Some(format!("predictor=analytical ({e})")),
            )),
            Err(e) => Err(e),
        }
    }

    /// Instantiates the predictor for a compilation.
    pub fn instantiate(&self) -> Box<dyn IiPredictor + Send + Sync> {
        match self {
            PredictorSpec::Analytical => Box::new(AnalyticalPredictor),
            PredictorSpec::Oracle => Box::new(OraclePredictor::default()),
            PredictorSpec::Gnn(model) => Box::new(GnnPredictor::new((**model).clone())),
        }
    }

    /// The predictor's contribution to the cache key. For the GNN this
    /// hashes the full parameter checkpoint: two different trainings of
    /// the same architecture must not share cache entries.
    pub fn key_value(&self) -> Value {
        match self {
            PredictorSpec::Analytical => Value::Str("analytical".to_string()),
            PredictorSpec::Oracle => Value::Str("oracle".to_string()),
            PredictorSpec::Gnn(model) => {
                let canon = serde_json::to_value(model.as_ref())
                    .expect("model serializes")
                    .canonicalize();
                let text = serde_json::to_string(&canon).expect("canonical value serializes");
                Value::Str(format!("gnn:{}", sha256_hex(&text)))
            }
        }
    }
}

/// A fully resolved job, ready to schedule.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display name.
    pub name: String,
    /// The kernel to compile.
    pub program: Program,
    /// The target architecture.
    pub arch: CgraArch,
    /// The predictor driving evaluation.
    pub predictor: PredictorSpec,
    /// Ranking mode.
    pub mode: RankMode,
    /// Degradation applied while resolving (e.g. an unreadable GNN
    /// checkpoint replaced by the analytical predictor); surfaces in the
    /// job outcome and in the cache key.
    pub degraded: Option<String>,
}

impl Job {
    /// Resolves one manifest line. An unreadable or unparsable GNN
    /// checkpoint degrades to the analytical predictor (recorded in
    /// [`Job::degraded`]) instead of failing the whole manifest.
    pub fn resolve(spec: &JobSpec) -> Result<Job, String> {
        let program = resolve_kernel(&spec.kernel)?;
        let arch = resolve_arch(&spec.arch)?;
        let (predictor, degraded) =
            PredictorSpec::parse_degrading(spec.predictor.as_deref().unwrap_or("analytical"))?;
        let mode = match spec.mode.as_deref().unwrap_or("performance") {
            "performance" => RankMode::Performance,
            "pareto" => RankMode::Pareto,
            other => return Err(format!("unknown mode {other}")),
        };
        let name = spec
            .name
            .clone()
            .unwrap_or_else(|| format!("{}@{}", spec.kernel, arch.name()));
        Ok(Job {
            name,
            program,
            arch,
            predictor,
            mode,
            degraded,
        })
    }

    /// Builds the compiler this job runs under.
    pub fn compiler(&self, base: &PtMapConfig) -> PtMap {
        let config = PtMapConfig {
            mode: self.mode,
            ..base.clone()
        };
        PtMap::new(self.predictor.instantiate(), config)
    }
}

/// Resolves a kernel reference to a program.
pub fn resolve_kernel(text: &str) -> Result<Program, String> {
    if let Some(path) = text.strip_prefix("file:") {
        return load_kernel_file(path);
    }
    if text.ends_with(".c") {
        return load_kernel_file(text);
    }
    if let Some(n) = text.strip_prefix("gemm:") {
        let n: u64 = n.parse().map_err(|_| format!("bad gemm size in {text}"))?;
        return Ok(ptmap_workloads::micro::gemm(n));
    }
    if let Some(n) = text.strip_prefix("vecsum:") {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("bad vecsum size in {text}"))?;
        return Ok(ptmap_workloads::micro::vec_reduction(n));
    }
    let code = text.strip_prefix("app:").unwrap_or(text);
    ptmap_workloads::apps::all()
        .into_iter()
        .find(|(c, _)| c.eq_ignore_ascii_case(code))
        .map(|(_, p)| p)
        .ok_or_else(|| format!("unknown kernel {text} (try app:ATA, gemm:32, or file:kernel.c)"))
}

fn load_kernel_file(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("kernel");
    ptmap_ir::parse::parse_program(name, &text).map_err(|e| format!("{path}: {e}"))
}

/// Resolves an architecture reference.
pub fn resolve_arch(text: &str) -> Result<CgraArch, String> {
    if let Some(path) = text.strip_prefix("file:") {
        return ptmap_arch::io::load(path).map_err(|e| e.to_string());
    }
    match text {
        "S4" => Ok(presets::s4()),
        "R4" => Ok(presets::r4()),
        "H6" => Ok(presets::h6()),
        "SL8" => Ok(presets::sl8()),
        "HReA4" => Ok(presets::hrea4()),
        other => Err(format!("unknown architecture {other} (see `ptmap archs`)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            jobs: vec![
                JobSpec {
                    name: None,
                    kernel: "app:ATA".into(),
                    arch: "S4".into(),
                    predictor: None,
                    mode: None,
                },
                JobSpec {
                    name: Some("g".into()),
                    kernel: "gemm:32".into(),
                    arch: "SL8".into(),
                    predictor: Some("oracle".into()),
                    mode: Some("pareto".into()),
                },
            ],
        };
        let text = serde_json::to_string(&m).unwrap();
        assert_eq!(Manifest::from_json(&text).unwrap(), m);
    }

    #[test]
    fn defaults_fill_in() {
        let m = Manifest::from_json(r#"{"jobs": [{"kernel": "gemm:24", "arch": "S4"}]}"#).unwrap();
        let jobs = m.resolve().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].name, "gemm:24@S4");
        assert_eq!(jobs[0].mode, RankMode::Performance);
        assert!(matches!(jobs[0].predictor, PredictorSpec::Analytical));
    }

    #[test]
    fn bare_app_codes_resolve() {
        assert!(resolve_kernel("ATA").is_ok());
        assert!(resolve_kernel("app:ata").is_ok());
        assert!(resolve_kernel("nope").is_err());
    }

    #[test]
    fn unknown_references_error() {
        assert!(resolve_arch("Z9").is_err());
        assert!(PredictorSpec::parse("magic").is_err());
        let m = Manifest::from_json(
            r#"{"jobs": [{"kernel": "gemm:24", "arch": "S4", "mode": "fastest"}]}"#,
        )
        .unwrap();
        assert!(m.resolve().is_err());
    }
}
