//! Batch-level instrumentation: a hand-rolled, std-only span/counter
//! recorder plus the JSON metrics schema a batch run emits.
//!
//! The [`Recorder`] accumulates named spans (total seconds + count) and
//! named counters from any worker thread. A batch run snapshots it into
//! a [`BatchMetrics`] document:
//!
//! ```json
//! {
//!   "wall_seconds": 1.9,
//!   "cache_hits": 3,
//!   "cache_misses": 5,
//!   "spans": { "job": { "seconds": 4.1, "count": 8 } },
//!   "counters": { "jobs_failed": 0 },
//!   "jobs": [
//!     { "job": "gemm:32@S4", "cache_hit": false, "wall_seconds": 0.6,
//!       "stages": { "explore_seconds": 0.01, "...": 0 } }
//!   ]
//! }
//! ```

use crate::lock_unpoisoned;
use ptmap_core::CompileMetrics;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Accumulated timing for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanStat {
    /// Total seconds across all entries.
    pub seconds: f64,
    /// Number of entries.
    pub count: u64,
    /// Fastest single entry, in seconds. Serde-defaulted so metrics
    /// documents written before this field existed still parse; a
    /// `0.0` with nonzero `count` on such old documents means
    /// "unknown", not "instant".
    #[serde(default)]
    pub min_seconds: f64,
    /// Slowest single entry, in seconds (serde-defaulted like
    /// `min_seconds`). This is what surfaces worst-case stage time
    /// per span in [`BatchMetrics`].
    #[serde(default)]
    pub max_seconds: f64,
}

/// Thread-safe span/counter accumulator.
#[derive(Debug, Default)]
pub struct Recorder {
    spans: Mutex<BTreeMap<String, SpanStat>>,
    counters: Mutex<BTreeMap<String, u64>>,
}

impl Recorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Times a closure under a span name.
    ///
    /// The sample is recorded even when the closure panics (the panic
    /// then resumes): a panicking job used to vanish from the span it
    /// was timed under, understating both the count and the seconds of
    /// exactly the jobs most worth investigating.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        self.add_seconds(name, t0.elapsed().as_secs_f64());
        match out {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Adds an already-measured duration to a span.
    pub fn add_seconds(&self, name: &str, seconds: f64) {
        let mut spans = lock_unpoisoned(&self.spans);
        let stat = spans.entry(name.to_string()).or_default();
        if stat.count == 0 {
            stat.min_seconds = seconds;
            stat.max_seconds = seconds;
        } else {
            stat.min_seconds = stat.min_seconds.min(seconds);
            stat.max_seconds = stat.max_seconds.max(seconds);
        }
        stat.seconds += seconds;
        stat.count += 1;
    }

    /// Increments a counter.
    pub fn incr(&self, name: &str, by: u64) {
        *lock_unpoisoned(&self.counters)
            .entry(name.to_string())
            .or_default() += by;
    }

    /// A point-in-time copy of all spans and counters.
    pub fn snapshot(&self) -> (BTreeMap<String, SpanStat>, BTreeMap<String, u64>) {
        (
            lock_unpoisoned(&self.spans).clone(),
            lock_unpoisoned(&self.counters).clone(),
        )
    }
}

/// Metrics for one job of a batch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Job display name.
    pub job: String,
    /// Whether the report came from the cache.
    pub cache_hit: bool,
    /// Whether the job produced a report.
    pub ok: bool,
    /// Wall-clock seconds for the job (including cache lookup).
    pub wall_seconds: f64,
    /// Per-stage compiler timings and effort counters (all zero for
    /// cache hits — no compilation ran).
    pub stages: CompileMetrics,
}

/// The metrics document for a whole batch run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchMetrics {
    /// End-to-end wall-clock seconds for the batch.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Cache hits across all jobs.
    pub cache_hits: u64,
    /// Cache misses across all jobs.
    pub cache_misses: u64,
    /// Corrupt disk cache entries quarantined during the run.
    #[serde(default)]
    pub cache_quarantines: u64,
    /// Accumulated spans (keyed by span name).
    pub spans: BTreeMap<String, SpanStat>,
    /// Accumulated counters (keyed by counter name).
    pub counters: BTreeMap<String, u64>,
    /// Per-job metrics, in manifest order.
    pub jobs: Vec<JobMetrics>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates() {
        let r = Recorder::new();
        let x = r.time("stage", || 21 * 2);
        assert_eq!(x, 42);
        r.add_seconds("stage", 1.0);
        r.incr("hits", 2);
        r.incr("hits", 3);
        let (spans, counters) = r.snapshot();
        assert_eq!(spans["stage"].count, 2);
        assert!(spans["stage"].seconds >= 1.0);
        assert_eq!(counters["hits"], 5);
    }

    #[test]
    fn recorder_survives_poisoned_locks() {
        // A job that panics while the recorder locks are held (e.g. a
        // panicking payload inside `Recorder::time`) must not poison the
        // daemon-lifetime recorder for every later job.
        let r = Recorder::new();
        r.incr("before", 1);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.time("span", || panic!("job panicked mid-span"))
        }));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = r.counters.lock().unwrap();
            panic!("poison the counters lock");
        }));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = r.spans.lock().unwrap();
            panic!("poison the spans lock");
        }));
        r.incr("after", 2);
        r.add_seconds("span", 0.5);
        let (spans, counters) = r.snapshot();
        assert_eq!(counters["before"], 1);
        assert_eq!(counters["after"], 2);
        // Two samples: the panicking `time` call records its duration
        // before rethrowing, plus the explicit `add_seconds`.
        assert_eq!(spans["span"].count, 2);
    }

    #[test]
    fn time_records_sample_when_closure_panics() {
        let r = Recorder::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.time("doomed", || -> () { panic!("job panicked") })
        }));
        assert!(caught.is_err(), "panic must propagate out of time()");
        let (spans, _) = r.snapshot();
        assert_eq!(spans["doomed"].count, 1);
        assert!(spans["doomed"].seconds >= 0.0);
    }

    #[test]
    fn span_stat_tracks_min_and_max() {
        let r = Recorder::new();
        r.add_seconds("s", 0.5);
        r.add_seconds("s", 0.1);
        r.add_seconds("s", 0.9);
        let (spans, _) = r.snapshot();
        let s = spans["s"];
        assert_eq!(s.count, 3);
        assert_eq!(s.min_seconds, 0.1);
        assert_eq!(s.max_seconds, 0.9);
        assert!((s.seconds - 1.5).abs() < 1e-9);
    }

    #[test]
    fn span_stat_deserializes_old_json_without_min_max() {
        // Metrics documents written before min/max existed.
        let old = r#"{"seconds": 1.25, "count": 4}"#;
        let s: SpanStat = serde_json::from_str(old).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min_seconds, 0.0);
        assert_eq!(s.max_seconds, 0.0);
    }

    #[test]
    fn metrics_serialize_round_trip() {
        let m = BatchMetrics {
            wall_seconds: 1.5,
            workers: 4,
            cache_hits: 2,
            cache_misses: 1,
            jobs: vec![JobMetrics {
                job: "a@S4".into(),
                ok: true,
                ..JobMetrics::default()
            }],
            ..BatchMetrics::default()
        };
        let text = serde_json::to_string(&m).unwrap();
        let back: BatchMetrics = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
    }
}
