//! Property test of the batch scheduler under the governor and random
//! fault injection: whatever combination of fault site/mode, worker
//! count, per-job timeout, and up-front cancellation is thrown at it,
//!
//! * the batch always completes (no deadlock, no propagated panic),
//! * every outcome carries a report XOR an error (never both, never
//!   neither), with the error class present exactly on failures,
//! * the on-disk cache contains only checksum-valid entries — corrupt
//!   state can only ever appear quarantined under `*.corrupt`.

use proptest::prelude::*;
use ptmap_pipeline::hash::sha256_hex;
use ptmap_pipeline::{run_batch, BatchConfig, Manifest};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Unique scratch directory per drawn case (no wall clock / RNG in the
/// test body itself, so a plain counter suffices).
fn scratch_dir() -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ptmap-prop-governor-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every `*.json` entry in the cache directory must decode as
/// `<64-hex-checksum>\n<json>` with a matching checksum.
fn assert_disk_entries_valid(dir: &Path) -> Result<(), proptest::TestCaseError> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(()); // nothing was ever written
    };
    for entry in entries {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.ends_with(".json") {
            // Quarantined (`*.corrupt`) files are the one sanctioned
            // form of invalid bytes; temp files must not survive.
            prop_assert!(name.ends_with(".corrupt"), "unexpected cache file {name}");
            continue;
        }
        let bytes = std::fs::read(&path).unwrap();
        let text = std::str::from_utf8(&bytes);
        prop_assert!(text.is_ok(), "{name}: not UTF-8");
        let (checksum, json) = text
            .unwrap()
            .split_once('\n')
            .unwrap_or(("missing", "missing"));
        prop_assert!(
            sha256_hex(json) == checksum,
            "{name}: checksum does not cover payload"
        );
    }
    Ok(())
}

const SITES: [&str; 4] = ["cache_read", "cache_write", "mapper_place", "worker_spawn"];
const MODES: [&str; 3] = ["error", "panic", "delay:1"];

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn batch_survives_random_faults_and_cancellation(
        site_pick in 0u32..5, // 4 = no fault installed
        mode_pick in 0u32..3,
        workers in 1usize..4,
        tight_timeout in any::<bool>(),
        cancelled in any::<bool>(),
    ) {
        let spec = match SITES.get(site_pick as usize) {
            Some(site) => format!("{site}:{}", MODES[mode_pick as usize]),
            None => String::new(),
        };
        let _guard = ptmap_governor::faultpoint::install(&spec).unwrap();

        let jobs = Manifest::from_json(
            r#"{"jobs": [
                {"kernel": "vecsum:64", "arch": "S4"},
                {"kernel": "vecsum:128", "arch": "R4"},
                {"kernel": "gemm:16", "arch": "S4"}
            ]}"#,
        )
        .unwrap()
        .resolve()
        .unwrap();

        let budget = ptmap_governor::Budget::cancellable();
        if cancelled {
            budget.cancel();
        }
        let dir = scratch_dir();
        let config = BatchConfig {
            workers,
            cache_dir: Some(dir.clone()),
            base: ptmap_core::PtMapConfig {
                explore: ptmap_transform::ExploreConfig::quick(),
                ..ptmap_core::PtMapConfig::default()
            },
            job_timeout: tight_timeout.then(|| Duration::from_nanos(1)),
            budget,
            max_retries: 1,
            trace: None,
            tap: None,
        };

        // Completing at all is the no-deadlock / no-propagated-panic
        // half of the property.
        let batch = run_batch(&jobs, &config);

        prop_assert_eq!(batch.outcomes.len(), jobs.len());
        for o in &batch.outcomes {
            prop_assert!(
                o.report.is_some() != o.error.is_some(),
                "{}: report XOR error violated (report={}, error={:?})",
                o.name,
                o.report.is_some(),
                o.error
            );
            prop_assert_eq!(
                o.error_class.is_some(),
                o.error.is_some(),
                "error class must accompany exactly the failures"
            );
            if cancelled {
                prop_assert!(o.report.is_none(), "{}: cancelled batch compiled", o.name);
                prop_assert_eq!(o.error_class.as_deref(), Some("cancelled"));
            }
        }
        assert_disk_entries_valid(&dir)?;
        let _ = std::fs::remove_dir_all(&dir);
    }
}
