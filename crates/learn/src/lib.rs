//! Online cost-model learning for PT-Map.
//!
//! The GNN cost model ships trained offline, but a deployed daemon sees
//! the ground truth for free: every compile it serves ends with the
//! modulo scheduler producing the *actual* `(II, ProEpi)` the predictor
//! only estimated. This crate closes that loop:
//!
//! * [`sample`] — live `(features, predicted, actual)` samples captured
//!   through the observe-only `ptmap_eval::SampleTap` hook, buffered in
//!   a bounded drop-oldest queue and spilled to an append-only,
//!   checksummed JSONL log;
//! * [`store`] — versioned model snapshots (`model-v<N>.bin` plus a
//!   `manifest.json`) with checksum framing, corrupt-snapshot
//!   quarantine, and highest-valid-version restart recovery;
//! * [`shadow`] — per-model cycle-MAPE accumulators and error-ratio
//!   histograms used to judge a freshly trained candidate against the
//!   serving model on the same live window;
//! * [`engine`] — the [`LearnEngine`]: ingests samples off the request
//!   path, fine-tunes a copy of the serving model when enough fresh
//!   samples accumulate (budget-aware, one epoch at a time), shadows
//!   the candidate, and atomically promotes it behind a version counter
//!   only when it beats the serving model by the configured margin.
//!
//! The engine never feeds predictions back into compilation — compiles
//! keep their job-specified predictor — so `--learn` is bit-identical
//! to a learning-free daemon by construction. "Hot-swap" applies to the
//! *learned* model the engine serves through `GET /model` and snapshot
//! files, which operators can then point new jobs at (`gnn:<snapshot>`)
//! or ship to the fleet.

pub mod engine;
pub mod sample;
pub mod shadow;
pub mod store;

pub use engine::{LearnEngine, LearnStatus, ModelVersion, PumpReport, ShadowStatus};
pub use sample::LiveSample;
pub use shadow::{verdict, ModelEval, ShadowVerdict, ERROR_BUCKETS};
pub use store::ModelStore;

use std::path::PathBuf;

/// Online-learning configuration.
#[derive(Debug, Clone)]
pub struct LearnConfig {
    /// Directory for versioned snapshots and the sample spill log
    /// (`None` = memory only; nothing survives a restart).
    pub model_dir: Option<PathBuf>,
    /// Fresh samples required before a fine-tune round starts.
    pub train_threshold: usize,
    /// Shadow-scored samples required before a promote/reject verdict.
    pub shadow_window: usize,
    /// Relative cycle-MAPE margin the candidate must beat the serving
    /// model by on the shadow window (0.02 = 2 % better).
    pub promote_margin: f64,
    /// Bounded ingest queue capacity; overflow drops the *oldest*
    /// pending sample (freshest traffic wins) and counts the drop.
    pub pending_capacity: usize,
    /// Fine-tuning hyper-parameters (run one epoch at a time with a
    /// budget check between epochs, so a draining daemon stops fast).
    pub train: ptmap_gnn::TrainConfig,
    /// Architecture of the model seeded at first boot when no snapshot
    /// exists in `model_dir`.
    pub model: ptmap_gnn::ModelConfig,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            model_dir: None,
            train_threshold: 32,
            shadow_window: 64,
            promote_margin: 0.02,
            pending_capacity: 4096,
            train: ptmap_gnn::TrainConfig {
                epochs: 30,
                ..ptmap_gnn::TrainConfig::default()
            },
            model: ptmap_gnn::ModelConfig::default(),
        }
    }
}

/// Locks a mutex, recovering from poisoning. The engine outlives any
/// one request thread; a panicking scorer must not wedge ingest. Every
/// guarded value stays structurally valid mid-mutation (vector pushes,
/// counter bumps), so continuing past the poison marker is safe.
pub(crate) fn lock_unpoisoned<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
