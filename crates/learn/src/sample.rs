//! Live-traffic training samples and the bounded ingest queue.

use ptmap_gnn::Sample;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One live observation, shaped so [`Sample`] feeds the offline
/// training/evaluation machinery unchanged while the envelope keeps
/// the serving-time context (what was predicted, by which backend,
/// under which trace).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveSample {
    /// The training row: DFG/arch features plus mapper ground truth.
    pub sample: Sample,
    /// II the request's predictor forecast.
    pub predicted_ii: u32,
    /// ProEpi the request's predictor forecast.
    pub predicted_pro_epi: u32,
    /// Mapper backend that produced the ground-truth mapping.
    pub backend: String,
    /// Trace id of the originating compile, when tracing was active.
    #[serde(default)]
    pub trace_id: Option<String>,
}

/// Bounded multi-producer queue between request threads (the tap) and
/// the trainer. Overflow drops the *oldest* entry: under sustained
/// overload the trainer sees the freshest traffic, and the drop is
/// counted rather than silent.
#[derive(Debug)]
pub struct PendingQueue {
    inner: Mutex<VecDeque<LiveSample>>,
    capacity: usize,
    total: AtomicU64,
    dropped: AtomicU64,
}

impl PendingQueue {
    /// Queue holding at most `capacity` samples (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PendingQueue {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            total: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Enqueues a sample, evicting the oldest on overflow.
    pub fn push(&self, sample: LiveSample) {
        let mut q = crate::lock_unpoisoned(&self.inner);
        if q.len() >= self.capacity {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(sample);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes everything currently queued.
    pub fn drain(&self) -> Vec<LiveSample> {
        crate::lock_unpoisoned(&self.inner).drain(..).collect()
    }

    /// Samples ever enqueued (including later-dropped ones).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Samples evicted by overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Currently queued count.
    pub fn len(&self) -> usize {
        crate::lock_unpoisoned(&self.inner).len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use ptmap_gnn::{build_input, Sample};

    /// A stationary live stream: identical features and ground truth,
    /// with only the tripcount cycling — learnable by construction, so
    /// lifecycle tests converge deterministically.
    pub(crate) fn live_sample(tag: u32) -> LiveSample {
        let program = ptmap_workloads::micro::gemm(16);
        let nest = program.perfect_nests().remove(0);
        let dfg = ptmap_ir::dfg::build_dfg(&program, &nest, &[]).unwrap();
        let arch = ptmap_arch::presets::s4();
        let input = build_input(&dfg, &arch);
        let mii = input.mii;
        LiveSample {
            sample: Sample {
                input,
                ii: mii + 1,
                pro_epi: 6,
                mii,
                tc: 16 + (tag % 4) as u64,
                cp_estimate: 3,
            },
            predicted_ii: mii,
            predicted_pro_epi: 4,
            backend: "heuristic".to_string(),
            trace_id: None,
        }
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let q = PendingQueue::new(2);
        for i in 0..5 {
            q.push(live_sample(i));
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.total(), 5);
        assert_eq!(q.dropped(), 3);
        let drained = q.drain();
        // The two freshest survive, in arrival order.
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].sample.tc, 16 + 3);
        assert_eq!(drained[1].sample.tc, 16);
        assert!(q.is_empty());
    }

    #[test]
    fn live_sample_round_trips_json() {
        let s = live_sample(1);
        let json = serde_json::to_string(&s).unwrap();
        let back: LiveSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
