//! The learn engine: ingest → spill → fine-tune → shadow → promote.
//!
//! Request threads only ever touch the bounded pending queue (through
//! the `SampleTap` impl); everything else — spilling, scoring,
//! training, the promotion verdict — happens in [`LearnEngine::pump`],
//! which the daemon drives from a background thread. `pump` is
//! synchronous and deterministic given the sample stream, so tests can
//! drive a full train→shadow→promote lifecycle without threads.

use crate::sample::{LiveSample, PendingQueue};
use crate::shadow::{verdict, ModelEval, ERROR_BUCKETS};
use crate::store::ModelStore;
use crate::{lock_unpoisoned, LearnConfig};
use ptmap_arch::CgraArch;
use ptmap_eval::{SampleTap, TapObservation};
use ptmap_gnn::{build_input, fine_tune, PtMapGnn, Sample, TrainConfig};
use ptmap_governor::budget::Budget;
use ptmap_ir::dfg::Dfg;
use ptmap_pipeline::hash::sha256_hex;
use ptmap_trace::{learn_events, Tracer};
use serde::Serialize;
use std::io::{self, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// An immutable, versioned model. Promotion swaps the `Arc` holding
/// one of these, so readers pin a consistent (version, weights) pair.
#[derive(Debug)]
pub struct ModelVersion {
    /// Monotonic version counter (1 at first boot).
    pub version: u64,
    /// The model weights.
    pub model: PtMapGnn,
}

/// A candidate mid-shadow: both models score the same live window.
struct ShadowState {
    candidate: PtMapGnn,
    candidate_eval: ModelEval,
    serving_eval: ModelEval,
    trained_on: usize,
}

/// State owned by the trainer side of the engine.
struct TrainerState {
    /// Samples accumulated toward the next fine-tune round.
    fresh: Vec<Sample>,
    /// Lifetime quality of the serving model (reset on promotion).
    serving_eval: ModelEval,
    shadow: Option<ShadowState>,
}

/// What one [`LearnEngine::pump`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Samples drained from the pending queue.
    pub drained: usize,
    /// Whether a fine-tune round ran (candidate entered shadow).
    pub trained: bool,
    /// Whether a shadow window concluded with a promotion.
    pub promoted: bool,
    /// Whether a shadow window concluded with a rejection.
    pub rejected: bool,
}

/// The online-learning engine. See the crate docs for the lifecycle.
pub struct LearnEngine {
    config: LearnConfig,
    store: ModelStore,
    pending: PendingQueue,
    serving: RwLock<Arc<ModelVersion>>,
    state: Mutex<TrainerState>,
    spill: Mutex<()>,
    spill_records: AtomicU64,
    spill_errors: AtomicU64,
    trainings: AtomicU64,
    shadow_scores: AtomicU64,
    promotions: AtomicU64,
    rejections: AtomicU64,
}

/// `GET /model` body: the engine's externally visible state.
#[derive(Debug, Clone, Serialize)]
pub struct LearnStatus {
    /// Serving model version.
    pub version: u64,
    /// Samples ever ingested / dropped by the bounded queue.
    pub samples_total: u64,
    pub samples_dropped: u64,
    /// Samples currently queued for the trainer.
    pub pending: usize,
    /// Fresh samples accumulated toward the next training round.
    pub fresh: usize,
    pub trainings: u64,
    pub promotions: u64,
    pub rejections: u64,
    pub snapshot_quarantines: u64,
    /// Lifetime serving-model quality.
    pub serving_mape: f64,
    pub serving_used: usize,
    pub serving_skipped: usize,
    /// Shadow window in flight, if any.
    pub shadow: Option<ShadowStatus>,
}

/// Status of an in-flight shadow window.
#[derive(Debug, Clone, Serialize)]
pub struct ShadowStatus {
    /// Samples the shadow window has scored so far.
    pub scored: usize,
    /// Samples the verdict needs.
    pub window: usize,
    /// Fresh-sample count the candidate was fine-tuned on.
    pub trained_on: usize,
    pub candidate_mape: f64,
    pub serving_mape: f64,
}

impl LearnEngine {
    /// Boots the engine: restores the highest valid snapshot from the
    /// configured model dir, or seeds version 1 from
    /// `config.model` and persists it immediately (so a snapshot always
    /// exists after first boot).
    pub fn new(config: LearnConfig) -> io::Result<Self> {
        let store = ModelStore::new(config.model_dir.clone())?;
        let (version, model) = match store.load_latest() {
            Some((v, m)) => (v, m),
            None => {
                let model = PtMapGnn::new(config.model.clone());
                store.persist(1, &model)?;
                (1, model)
            }
        };
        let pending = PendingQueue::new(config.pending_capacity);
        Ok(LearnEngine {
            pending,
            store,
            config,
            serving: RwLock::new(Arc::new(ModelVersion { version, model })),
            state: Mutex::new(TrainerState {
                fresh: Vec::new(),
                serving_eval: ModelEval::default(),
                shadow: None,
            }),
            spill: Mutex::new(()),
            spill_records: AtomicU64::new(0),
            spill_errors: AtomicU64::new(0),
            trainings: AtomicU64::new(0),
            shadow_scores: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &LearnConfig {
        &self.config
    }

    /// The snapshot store.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// Current serving model version number.
    pub fn version(&self) -> u64 {
        self.serving_model().version
    }

    /// Pins the current serving (version, model) pair.
    pub fn serving_model(&self) -> Arc<ModelVersion> {
        Arc::clone(
            &self
                .serving
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Directly enqueues a live sample (the tap does this per compile).
    pub fn ingest(&self, sample: LiveSample) {
        self.pending.push(sample);
    }

    /// Samples currently waiting for the trainer.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Drains pending samples and advances the learning lifecycle one
    /// step: spill → score serving + shadow → verdict or fine-tune.
    /// Training runs outside the state lock, one epoch at a time with a
    /// budget check in between, so a draining daemon stops within one
    /// epoch and status queries never block on training.
    pub fn pump(&self, budget: &Budget, tracer: &Tracer) -> PumpReport {
        let span = tracer.span("learn_pump");
        let mut report = PumpReport::default();
        let drained = self.pending.drain();
        report.drained = drained.len();
        self.spill(&drained);

        let serving = self.serving_model();
        let mut state = lock_unpoisoned(&self.state);
        for live in &drained {
            state.serving_eval.score_model(&serving.model, &live.sample);
            if let Some(shadow) = &mut state.shadow {
                shadow
                    .candidate_eval
                    .score_model(&shadow.candidate, &live.sample);
                shadow
                    .serving_eval
                    .score_model(&serving.model, &live.sample);
                self.shadow_scores.fetch_add(1, Ordering::Relaxed);
            }
            state.fresh.push(live.sample.clone());
        }

        // A concluded shadow window yields a verdict before any new
        // training starts.
        let window_done = state
            .shadow
            .as_ref()
            .is_some_and(|s| s.candidate_eval.scored >= self.config.shadow_window);
        if window_done {
            let shadow = state.shadow.take().expect("window_done checked");
            let v = verdict(
                &shadow.candidate_eval,
                &shadow.serving_eval,
                self.config.promote_margin,
            );
            if v.promote {
                let next = serving.version + 1;
                let promoted = Arc::new(ModelVersion {
                    version: next,
                    model: shadow.candidate,
                });
                if let Err(e) = self.store.persist(next, &promoted.model) {
                    eprintln!("warning: model snapshot v{next} not persisted: {e}");
                }
                *self
                    .serving
                    .write()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = promoted;
                // The serving model changed; its lifetime eval restarts.
                state.serving_eval = ModelEval::default();
                self.promotions.fetch_add(1, Ordering::Relaxed);
                report.promoted = true;
                span.event_attr(learn_events::PROMOTE, "version", next);
                span.attr("candidate_mape", v.candidate_mape);
                span.attr("serving_mape", v.serving_mape);
            } else {
                self.rejections.fetch_add(1, Ordering::Relaxed);
                report.rejected = true;
                span.event_attr(learn_events::REJECT, "serving_version", serving.version);
            }
        } else if state.shadow.is_none() && state.fresh.len() >= self.config.train_threshold {
            // Enough fresh traffic and no shadow in flight: fine-tune a
            // copy of the serving model outside the lock.
            let samples = std::mem::take(&mut state.fresh);
            drop(state);
            span.event_attr(learn_events::TRAIN_START, "samples", samples.len());
            let round = self.trainings.load(Ordering::Relaxed);
            match self.train_candidate(&serving.model, &samples, round, budget) {
                Some(candidate) => {
                    self.trainings.fetch_add(1, Ordering::Relaxed);
                    report.trained = true;
                    span.event(learn_events::TRAIN_DONE);
                    let mut state = lock_unpoisoned(&self.state);
                    state.shadow = Some(ShadowState {
                        candidate,
                        candidate_eval: ModelEval::default(),
                        serving_eval: ModelEval::default(),
                        trained_on: samples.len(),
                    });
                    span.event_attr(
                        learn_events::SHADOW_START,
                        "window",
                        self.config.shadow_window,
                    );
                }
                None => {
                    // Budget exhausted before the first epoch finished:
                    // give the samples back so drain loses nothing.
                    let mut state = lock_unpoisoned(&self.state);
                    let mut restored = samples;
                    restored.append(&mut state.fresh);
                    state.fresh = restored;
                }
            }
        }
        report
    }

    /// Fine-tunes a copy of `base` on `samples`, one epoch per
    /// `fine_tune` call so the budget is honoured between epochs. Each
    /// epoch's shuffle seed derives from (config seed, round, epoch) so
    /// retraining on the same stream is reproducible. `None` when the
    /// budget expired before any epoch completed.
    fn train_candidate(
        &self,
        base: &PtMapGnn,
        samples: &[Sample],
        round: u64,
        budget: &Budget,
    ) -> Option<PtMapGnn> {
        let mut candidate = base.clone();
        let mut done = 0usize;
        for epoch in 0..self.config.train.epochs.max(1) {
            if budget.check().is_err() {
                break;
            }
            fine_tune(
                &mut candidate,
                samples,
                &TrainConfig {
                    epochs: 1,
                    seed: self
                        .config
                        .train
                        .seed
                        .wrapping_add(round.wrapping_mul(0x9E37_79B9))
                        .wrapping_add(epoch as u64),
                    ..self.config.train.clone()
                },
            );
            done += 1;
        }
        (done > 0).then_some(candidate)
    }

    /// Appends drained samples to the spill log (`samples.jsonl` in the
    /// model dir): one `"<sha256-hex> <json>"` line per sample, so a
    /// torn tail or bit rot is detectable line-by-line on replay.
    fn spill(&self, drained: &[LiveSample]) {
        let Some(dir) = self.store.dir() else { return };
        if drained.is_empty() {
            return;
        }
        let mut buf = String::new();
        for live in drained {
            match serde_json::to_string(live) {
                Ok(json) => {
                    buf.push_str(&sha256_hex(&json));
                    buf.push(' ');
                    buf.push_str(&json);
                    buf.push('\n');
                }
                Err(_) => {
                    self.spill_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let _guard = lock_unpoisoned(&self.spill);
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("samples.jsonl"))
            .and_then(|mut f| f.write_all(buf.as_bytes()));
        match appended {
            Ok(()) => {
                self.spill_records
                    .fetch_add(drained.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                self.spill_errors
                    .fetch_add(drained.len() as u64, Ordering::Relaxed);
            }
        }
    }

    /// The engine's externally visible state, for `GET /model`.
    pub fn status(&self) -> LearnStatus {
        let serving = self.serving_model();
        let state = lock_unpoisoned(&self.state);
        LearnStatus {
            version: serving.version,
            samples_total: self.pending.total(),
            samples_dropped: self.pending.dropped(),
            pending: self.pending.len(),
            fresh: state.fresh.len(),
            trainings: self.trainings.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
            snapshot_quarantines: self.store.quarantines(),
            serving_mape: state.serving_eval.mape(),
            serving_used: state.serving_eval.used,
            serving_skipped: state.serving_eval.skipped,
            shadow: state.shadow.as_ref().map(|s| ShadowStatus {
                scored: s.candidate_eval.scored,
                window: self.config.shadow_window,
                trained_on: s.trained_on,
                candidate_mape: s.candidate_eval.mape(),
                serving_mape: s.serving_eval.mape(),
            }),
        }
    }

    /// `GET /model` body.
    pub fn status_json(&self) -> String {
        serde_json::to_string_pretty(&self.status()).expect("status serializes")
    }

    /// Prometheus text for the learning subsystem; the caller splices
    /// this into the daemon's `/metrics` body.
    pub fn render_metrics(&self) -> String {
        let status = self.status();
        let state = lock_unpoisoned(&self.state);
        let mut out = String::new();
        {
            let mut gauge = |name: &str, help: &str, value: f64| {
                out.push_str(&format!(
                    "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
                ));
            };
            gauge(
                "ptmap_model_version",
                "Version of the serving learned cost model.",
                status.version as f64,
            );
            gauge(
                "ptmap_learn_pending_samples",
                "Live samples queued for the trainer.",
                status.pending as f64,
            );
        }
        {
            let mut counter = |name: &str, help: &str, value: u64| {
                out.push_str(&format!(
                    "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
                ));
            };
            counter(
                "ptmap_learn_samples_total",
                "Live samples ingested from completed compiles.",
                status.samples_total,
            );
            counter(
                "ptmap_learn_samples_dropped_total",
                "Live samples evicted by the bounded ingest queue.",
                status.samples_dropped,
            );
            counter(
                "ptmap_learn_spill_records_total",
                "Samples appended to the checksummed spill log.",
                self.spill_records.load(Ordering::Relaxed),
            );
            counter(
                "ptmap_learn_spill_errors_total",
                "Samples that failed to spill.",
                self.spill_errors.load(Ordering::Relaxed),
            );
            counter(
                "ptmap_learn_trainings_total",
                "Background fine-tune rounds completed.",
                status.trainings,
            );
            counter(
                "ptmap_learn_shadow_scores_total",
                "Samples scored by a shadow candidate.",
                self.shadow_scores.load(Ordering::Relaxed),
            );
            counter(
                "ptmap_learn_promotions_total",
                "Candidates promoted to serving.",
                status.promotions,
            );
            counter(
                "ptmap_learn_rejections_total",
                "Candidates rejected after their shadow window.",
                status.rejections,
            );
            counter(
                "ptmap_learn_snapshot_quarantines_total",
                "Corrupt model snapshots quarantined at load.",
                status.snapshot_quarantines,
            );
        }

        out.push_str(
            "# HELP ptmap_learn_model_mape Live cycle MAPE (percent) per model.\n\
             # TYPE ptmap_learn_model_mape gauge\n",
        );
        out.push_str(&format!(
            "ptmap_learn_model_mape{{model=\"serving\"}} {}\n",
            state.serving_eval.mape()
        ));
        if let Some(shadow) = &state.shadow {
            out.push_str(&format!(
                "ptmap_learn_model_mape{{model=\"candidate\"}} {}\n",
                shadow.candidate_eval.mape()
            ));
        }

        out.push_str(
            "# HELP ptmap_learn_error_ratio Absolute cycle-prediction error ratio per model.\n\
             # TYPE ptmap_learn_error_ratio histogram\n",
        );
        let mut histogram = |model: &str, eval: &ModelEval| {
            let cum = eval.cumulative_buckets();
            for (i, edge) in ERROR_BUCKETS.iter().enumerate() {
                out.push_str(&format!(
                    "ptmap_learn_error_ratio_bucket{{model=\"{model}\",le=\"{edge}\"}} {}\n",
                    cum[i]
                ));
            }
            out.push_str(&format!(
                "ptmap_learn_error_ratio_bucket{{model=\"{model}\",le=\"+Inf\"}} {}\n",
                cum[ERROR_BUCKETS.len()]
            ));
            out.push_str(&format!(
                "ptmap_learn_error_ratio_sum{{model=\"{model}\"}} {}\n",
                eval.abs_ratio_sum
            ));
            out.push_str(&format!(
                "ptmap_learn_error_ratio_count{{model=\"{model}\"}} {}\n",
                eval.used
            ));
        };
        histogram("serving", &state.serving_eval);
        if let Some(shadow) = &state.shadow {
            histogram("candidate", &shadow.candidate_eval);
        }
        out
    }
}

impl std::fmt::Debug for LearnEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LearnEngine")
            .field("version", &self.version())
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl SampleTap for LearnEngine {
    fn record(&self, dfg: &Dfg, arch: &CgraArch, obs: &TapObservation) {
        let input = build_input(dfg, arch);
        let cp_estimate = dfg.critical_path().saturating_sub(obs.mii);
        self.ingest(LiveSample {
            sample: Sample {
                input,
                ii: obs.actual_ii,
                pro_epi: obs.actual_pro_epi,
                mii: obs.mii,
                tc: obs.tc,
                cp_estimate,
            },
            predicted_ii: obs.predicted_ii,
            predicted_pro_epi: obs.predicted_pro_epi,
            backend: obs.backend.to_string(),
            trace_id: obs.trace_id.clone(),
        });
    }
}

// `cycles` is re-exported here so serve can compute request-side cycle
// figures consistently with the shadow scorer.
pub use crate::shadow::cycles as cycle_count;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::tests::live_sample;
    use ptmap_gnn::ModelConfig;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ptmap-learn-engine-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_config(dir: Option<PathBuf>) -> LearnConfig {
        LearnConfig {
            model_dir: dir,
            train_threshold: 4,
            shadow_window: 4,
            promote_margin: 0.02,
            pending_capacity: 64,
            train: ptmap_gnn::TrainConfig {
                epochs: 40,
                ..ptmap_gnn::TrainConfig::default()
            },
            model: ModelConfig {
                hidden: 8,
                layers: 2,
                ..ModelConfig::default()
            },
        }
    }

    fn drive(engine: &LearnEngine, n: u32) -> PumpReport {
        for i in 0..n {
            engine.ingest(live_sample(i));
        }
        engine.pump(&Budget::unlimited(), &Tracer::disabled())
    }

    #[test]
    fn boot_seeds_v1_and_persists() {
        let dir = scratch("boot");
        let engine = LearnEngine::new(tiny_config(Some(dir.clone()))).unwrap();
        assert_eq!(engine.version(), 1);
        assert!(dir.join("model-v1.bin").exists());
        assert_eq!(engine.store().manifest().map(|m| m.latest), Some(1));
        // A second boot restores, not reseeds.
        let again = LearnEngine::new(tiny_config(Some(dir.clone()))).unwrap();
        assert_eq!(again.version(), 1);
        assert_eq!(
            again.serving_model().model.to_bytes(),
            engine.serving_model().model.to_bytes()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_training_beats_miscalibrated_model_and_promotes() {
        let dir = scratch("promote");
        let engine = LearnEngine::new(tiny_config(Some(dir.clone()))).unwrap();

        // Round 1: enough fresh samples trigger a fine-tune round; the
        // candidate enters shadow.
        let r = drive(&engine, 8);
        assert_eq!(r.drained, 8);
        assert!(r.trained, "threshold reached, training must run");
        assert!(engine.status().shadow.is_some());

        // Round 2: the shadow window fills; the fine-tuned candidate
        // must out-predict the untrained (miscalibrated) incumbent on
        // the same live distribution and be promoted atomically.
        let r = drive(&engine, 8);
        assert!(r.promoted, "trained candidate should beat the seed model");
        assert!(!r.rejected);
        assert_eq!(engine.version(), 2);
        let status = engine.status();
        assert!(status.shadow.is_none(), "shadow cleared after verdict");
        assert_eq!(status.promotions, 1);

        // The promoted version is snapshotted and reloads on restart.
        assert!(dir.join("model-v2.bin").exists());
        assert_eq!(engine.store().manifest().map(|m| m.latest), Some(2));
        let reborn = LearnEngine::new(tiny_config(Some(dir.clone()))).unwrap();
        assert_eq!(reborn.version(), 2);
        assert_eq!(
            reborn.serving_model().model.to_bytes(),
            engine.serving_model().model.to_bytes()
        );

        // The spill log holds every drained sample, checksummed.
        let spill = std::fs::read_to_string(dir.join("samples.jsonl")).unwrap();
        let lines: Vec<&str> = spill.lines().collect();
        assert_eq!(lines.len(), 16);
        for line in lines {
            let (sum, json) = line.split_once(' ').expect("checksummed line");
            assert_eq!(sum, sha256_hex(json), "line checksum must verify");
            let _: LiveSample = serde_json::from_str(json).expect("line parses");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_budget_trains_nothing_and_restores_samples() {
        let engine = LearnEngine::new(tiny_config(None)).unwrap();
        let cancelled = Budget::cancellable();
        cancelled.cancel();
        for i in 0..8 {
            engine.ingest(live_sample(i));
        }
        let r = engine.pump(&cancelled, &Tracer::disabled());
        assert!(!r.trained, "no epoch fits in a cancelled budget");
        assert_eq!(engine.status().fresh, 8, "samples restored for later");
        assert!(engine.status().shadow.is_none());
        // With the budget restored, the next pump trains on them.
        let r = engine.pump(&Budget::unlimited(), &Tracer::disabled());
        assert!(r.trained);
    }

    #[test]
    fn rejection_keeps_serving_model() {
        // Deterministic rejection: a candidate trained on zero usable
        // variation (every sample identical to the serving model's
        // strength) cannot beat the 100 % margin.
        let mut cfg = tiny_config(None);
        cfg.promote_margin = 1.0; // candidate must be infinitely better
        let engine = LearnEngine::new(cfg).unwrap();
        let r1 = drive(&engine, 8);
        assert!(r1.trained);
        let r2 = drive(&engine, 8);
        assert!(r2.rejected, "no candidate clears a 100 % margin");
        assert!(!r2.promoted);
        assert_eq!(engine.version(), 1);
        assert_eq!(engine.status().rejections, 1);
    }

    #[test]
    fn tap_records_into_queue() {
        let engine = LearnEngine::new(tiny_config(None)).unwrap();
        let program = ptmap_workloads::micro::gemm(16);
        let nest = program.perfect_nests().remove(0);
        let dfg = ptmap_ir::dfg::build_dfg(&program, &nest, &[]).unwrap();
        let arch = ptmap_arch::presets::s4();
        engine.record(
            &dfg,
            &arch,
            &TapObservation {
                predicted_ii: 2,
                predicted_pro_epi: 5,
                actual_ii: 3,
                actual_pro_epi: 6,
                mii: 2,
                tc: 16,
                backend: "heuristic",
                trace_id: Some("t-1".to_string()),
            },
        );
        assert_eq!(engine.pending_len(), 1);
        let drained = engine.pending.drain();
        assert_eq!(drained[0].sample.ii, 3);
        assert_eq!(drained[0].sample.mii, 2);
        assert_eq!(drained[0].backend, "heuristic");
        assert_eq!(drained[0].trace_id.as_deref(), Some("t-1"));
        assert_eq!(
            drained[0].sample.cp_estimate,
            dfg.critical_path().saturating_sub(2)
        );
    }

    #[test]
    fn metrics_render_and_validate() {
        let engine = LearnEngine::new(tiny_config(None)).unwrap();
        drive(&engine, 8); // trains → shadow active → candidate series present
        let text = engine.render_metrics();
        assert!(text.contains("ptmap_model_version 1"));
        assert!(text.contains("ptmap_learn_trainings_total 1"));
        assert!(text.contains("ptmap_learn_model_mape{model=\"serving\"}"));
        assert!(text.contains("ptmap_learn_model_mape{model=\"candidate\"}"));
        assert!(text.contains("le=\"+Inf\""));
        // Cumulative buckets must be monotone per model.
        for model in ["serving", "candidate"] {
            let mut last = 0u64;
            for line in text
                .lines()
                .filter(|l| l.starts_with("ptmap_learn_error_ratio_bucket") && l.contains(model))
            {
                let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= last, "bucket counts must cumulate: {line}");
                last = v;
            }
        }
    }

    #[test]
    fn pump_is_deterministic_for_a_fixed_stream() {
        let run = || {
            let engine = LearnEngine::new(tiny_config(None)).unwrap();
            drive(&engine, 8);
            drive(&engine, 8);
            (
                engine.version(),
                engine.serving_model().model.to_bytes(),
                engine.status().promotions,
            )
        };
        assert_eq!(run(), run());
    }
}
