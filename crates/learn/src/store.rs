//! Versioned model snapshots.
//!
//! Each promoted model persists as `model-v<N>.bin` — a checksum frame
//! (`<sha256-hex>\n<json>`, the report cache's framing) around the
//! model's deterministic byte encoding — plus a `manifest.json` naming
//! the latest version. On restart the store loads the highest version
//! that checks out; a corrupt or injected-fault snapshot is quarantined
//! (renamed `<name>.corrupt`), counted, and skipped, so one bad file
//! never takes the learner down — it restores from the next-best
//! version or reseeds.

use ptmap_gnn::PtMapGnn;
use ptmap_governor::faultpoint::{self, sites};
use ptmap_pipeline::hash::sha256_hex;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// `manifest.json`: the store's pointer to the latest snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreManifest {
    /// The most recently persisted version.
    pub latest: u64,
}

/// A directory of versioned model snapshots (or a no-op when no
/// directory is configured).
#[derive(Debug)]
pub struct ModelStore {
    dir: Option<PathBuf>,
    quarantines: AtomicU64,
}

impl ModelStore {
    /// Opens (creating if needed) a snapshot directory; `None` makes
    /// every operation an in-memory no-op.
    pub fn new(dir: Option<PathBuf>) -> io::Result<Self> {
        if let Some(d) = &dir {
            std::fs::create_dir_all(d)?;
        }
        Ok(ModelStore {
            dir,
            quarantines: AtomicU64::new(0),
        })
    }

    /// The configured directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Snapshots quarantined (checksum/parse/fault failures) so far.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.load(Ordering::Relaxed)
    }

    /// Path of one version's snapshot file.
    pub fn snapshot_path(&self, version: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(snapshot_name(version)))
    }

    /// Persists a model as `model-v<version>.bin` (write-temp-rename,
    /// so readers never observe a torn file) and updates
    /// `manifest.json`. A no-op without a directory.
    pub fn persist(&self, version: u64, model: &PtMapGnn) -> io::Result<()> {
        let Some(dir) = &self.dir else { return Ok(()) };
        let json = String::from_utf8(model.to_bytes()).expect("model encodes as UTF-8");
        let framed = format!("{}\n{json}", sha256_hex(&json));
        let path = dir.join(snapshot_name(version));
        let tmp = dir.join(format!(".{}.tmp", snapshot_name(version)));
        std::fs::write(&tmp, framed)?;
        std::fs::rename(&tmp, &path)?;
        let manifest =
            serde_json::to_string(&StoreManifest { latest: version }).expect("manifest encodes");
        let mtmp = dir.join(".manifest.json.tmp");
        std::fs::write(&mtmp, manifest)?;
        std::fs::rename(&mtmp, dir.join("manifest.json"))?;
        Ok(())
    }

    /// Reads `manifest.json`, if present and parsable.
    pub fn manifest(&self) -> Option<StoreManifest> {
        let dir = self.dir.as_ref()?;
        let text = std::fs::read_to_string(dir.join("manifest.json")).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Loads the highest-versioned snapshot that validates. Corrupt
    /// snapshots (bad checksum, unparsable model, or a `model_load`
    /// fault scoped to the file name) are quarantined and skipped, so
    /// the store falls back to the next version down. `None` when no
    /// snapshot survives.
    pub fn load_latest(&self) -> Option<(u64, PtMapGnn)> {
        let dir = self.dir.as_ref()?;
        let mut versions: Vec<u64> = std::fs::read_dir(dir)
            .ok()?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_snapshot_name(&e.file_name().to_string_lossy()))
            .collect();
        versions.sort_unstable();
        while let Some(v) = versions.pop() {
            let name = snapshot_name(v);
            let path = dir.join(&name);
            // The fault point is scoped to the snapshot file name so a
            // test (or drill) can fail one version's load while the
            // rest restore clean.
            let read = faultpoint::with_scope(&name, || {
                faultpoint::fail_point(sites::MODEL_LOAD)
                    .map_err(|e| e.to_string())
                    .and_then(|()| std::fs::read(&path).map_err(|e| e.to_string()))
            });
            match read.and_then(|bytes| decode_snapshot(&bytes).map_err(str::to_string)) {
                Ok(model) => return Some((v, model)),
                Err(reason) => self.quarantine(&path, &name, &reason),
            }
        }
        None
    }

    fn quarantine(&self, path: &Path, name: &str, reason: &str) {
        let mut dst = path.as_os_str().to_owned();
        dst.push(".corrupt");
        if std::fs::rename(path, &dst).is_err() {
            let _ = std::fs::remove_file(path);
        }
        self.quarantines.fetch_add(1, Ordering::Relaxed);
        eprintln!("warning: quarantined corrupt model snapshot {name} ({reason})");
    }
}

/// Decodes a checksum-framed snapshot.
fn decode_snapshot(bytes: &[u8]) -> Result<PtMapGnn, &'static str> {
    let text = std::str::from_utf8(bytes).map_err(|_| "not UTF-8")?;
    let (checksum, json) = text.split_once('\n').ok_or("missing checksum header")?;
    if checksum.len() != 64 || !checksum.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err("malformed checksum header");
    }
    if sha256_hex(json) != checksum {
        return Err("checksum mismatch");
    }
    PtMapGnn::from_bytes(json.as_bytes()).map_err(|_| "unparsable model")
}

fn snapshot_name(version: u64) -> String {
    format!("model-v{version}.bin")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("model-v")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_gnn::ModelConfig;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ptmap-learn-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_model(seed: u64) -> PtMapGnn {
        PtMapGnn::new(ModelConfig {
            hidden: 4,
            layers: 1,
            seed,
            ..ModelConfig::default()
        })
    }

    #[test]
    fn persist_and_load_highest() {
        let dir = scratch("roundtrip");
        let store = ModelStore::new(Some(dir.clone())).unwrap();
        store.persist(1, &tiny_model(1)).unwrap();
        store.persist(2, &tiny_model(2)).unwrap();
        assert_eq!(store.manifest(), Some(StoreManifest { latest: 2 }));
        let (v, model) = store.load_latest().unwrap();
        assert_eq!(v, 2);
        assert_eq!(model.to_bytes(), tiny_model(2).to_bytes());
        assert_eq!(store.quarantines(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_only_store_is_a_noop() {
        let store = ModelStore::new(None).unwrap();
        store.persist(1, &tiny_model(1)).unwrap();
        assert_eq!(store.load_latest().map(|(v, _)| v), None);
        assert_eq!(store.manifest(), None);
        assert_eq!(store.snapshot_path(1), None);
    }

    #[test]
    fn corrupt_snapshot_quarantined_and_older_restores() {
        let dir = scratch("corrupt");
        let store = ModelStore::new(Some(dir.clone())).unwrap();
        store.persist(1, &tiny_model(1)).unwrap();
        store.persist(2, &tiny_model(2)).unwrap();
        // Flip bytes in v2's payload: checksum mismatch.
        let p2 = store.snapshot_path(2).unwrap();
        let mut bytes = std::fs::read(&p2).unwrap();
        let last = bytes.len() - 2;
        bytes[last] = bytes[last].wrapping_add(1);
        std::fs::write(&p2, bytes).unwrap();

        let (v, model) = store.load_latest().unwrap();
        assert_eq!(v, 1, "falls back to the intact older version");
        assert_eq!(model.to_bytes(), tiny_model(1).to_bytes());
        assert_eq!(store.quarantines(), 1);
        assert!(!p2.exists(), "corrupt file moved aside");
        assert!(dir.join("model-v2.bin.corrupt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_load_fault_scoped_to_one_version() {
        let dir = scratch("fault");
        let store = ModelStore::new(Some(dir.clone())).unwrap();
        store.persist(3, &tiny_model(3)).unwrap();
        store.persist(4, &tiny_model(4)).unwrap();
        {
            let _guard = faultpoint::install("model_load:error@model-v4.bin").unwrap();
            let (v, _) = store.load_latest().unwrap();
            assert_eq!(v, 3, "the faulted version is skipped");
            assert_eq!(store.quarantines(), 1);
            assert!(dir.join("model-v4.bin.corrupt").exists());
        }
        // Fault cleared: v3 is now the highest surviving snapshot.
        let fresh = ModelStore::new(Some(dir.clone())).unwrap();
        assert_eq!(fresh.load_latest().map(|(v, _)| v), Some(3));
        assert_eq!(fresh.quarantines(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_snapshots_corrupt_returns_none() {
        let dir = scratch("allbad");
        let store = ModelStore::new(Some(dir.clone())).unwrap();
        store.persist(1, &tiny_model(1)).unwrap();
        std::fs::write(store.snapshot_path(1).unwrap(), b"garbage").unwrap();
        assert!(store.load_latest().is_none());
        assert_eq!(store.quarantines(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_names_parse() {
        assert_eq!(parse_snapshot_name("model-v12.bin"), Some(12));
        assert_eq!(parse_snapshot_name("model-v12.bin.corrupt"), None);
        assert_eq!(parse_snapshot_name("manifest.json"), None);
        assert_eq!(parse_snapshot_name("model-vx.bin"), None);
    }
}
