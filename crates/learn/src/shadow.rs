//! Shadow evaluation: per-model cycle-error accumulators and the
//! promote/reject verdict.
//!
//! While a candidate model shadows, every live sample is scored by both
//! the candidate and the serving model against the mapper's ground
//! truth. The comparison metric is the paper's Fig. 6 cycle MAPE
//! (`Cycle = TC · II + ProEpi`), accumulated with the same
//! skip-and-count semantics as `ptmap_gnn::mape_cycles_detailed`:
//! zero-actual-cycle samples cannot contribute a percentage error, so
//! they are counted as skipped instead of NaN-poisoning the mean.

use ptmap_gnn::PtMapGnn;
use ptmap_gnn::Sample;
use serde::Serialize;

/// Upper edges of the absolute-error-ratio histogram buckets; the
/// implicit last bucket is `+Inf`.
pub const ERROR_BUCKETS: [f64; 4] = [0.1, 0.25, 0.5, 1.0];

/// Accumulated prediction quality of one model over live samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ModelEval {
    /// Samples scored (used + skipped).
    pub scored: usize,
    /// Samples that contributed an error ratio.
    pub used: usize,
    /// Samples skipped for a zero actual cycle count.
    pub skipped: usize,
    /// Sum of absolute error ratios over `used`.
    pub abs_ratio_sum: f64,
    /// Per-bucket (non-cumulative) counts of the absolute error ratio;
    /// index `i` counts ratios in `(edge[i-1], edge[i]]` with the final
    /// slot catching everything above the last edge.
    pub buckets: [u64; ERROR_BUCKETS.len() + 1],
}

impl ModelEval {
    /// Folds one `(predicted, actual)` cycle pair in.
    pub fn score(&mut self, predicted: f64, actual: f64) {
        self.scored += 1;
        if actual <= 0.0 {
            self.skipped += 1;
            return;
        }
        let ratio = ((predicted - actual) / actual).abs();
        self.abs_ratio_sum += ratio;
        self.used += 1;
        let idx = ERROR_BUCKETS
            .iter()
            .position(|&edge| ratio <= edge)
            .unwrap_or(ERROR_BUCKETS.len());
        self.buckets[idx] += 1;
    }

    /// Scores a model's prediction for one sample against the sample's
    /// mapper ground truth.
    pub fn score_model(&mut self, model: &PtMapGnn, sample: &Sample) {
        let pred = model.predict(&sample.input);
        self.score(
            cycles(pred.ii, pred.pro_epi, sample.tc),
            cycles(sample.ii, sample.pro_epi, sample.tc),
        );
    }

    /// Mean absolute percentage error (percent) over the used samples;
    /// `0.0` when nothing was usable.
    pub fn mape(&self) -> f64 {
        100.0 * self.abs_ratio_sum / self.used.max(1) as f64
    }

    /// Cumulative bucket counts in edge order (Prometheus `le`
    /// convention; the last entry equals `used`).
    pub fn cumulative_buckets(&self) -> [u64; ERROR_BUCKETS.len() + 1] {
        let mut out = self.buckets;
        for i in 1..out.len() {
            out[i] += out[i - 1];
        }
        out
    }
}

/// Eqn. 1: `Cycle(l) = TC · II + ProEpi`.
pub fn cycles(ii: u32, pro_epi: u32, tc: u64) -> f64 {
    tc as f64 * ii as f64 + pro_epi as f64
}

/// The outcome of a completed shadow window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ShadowVerdict {
    /// Whether the candidate replaces the serving model.
    pub promote: bool,
    /// Candidate cycle MAPE on the window.
    pub candidate_mape: f64,
    /// Serving-model cycle MAPE on the same window.
    pub serving_mape: f64,
}

/// Judges a completed shadow window: the candidate is promoted only
/// when it scored at least one usable sample and its MAPE beats the
/// serving model's by the relative `margin` (`0.02` = must be ≥ 2 %
/// better). Ties and unusable windows keep the serving model — the
/// safe default under churn.
pub fn verdict(candidate: &ModelEval, serving: &ModelEval, margin: f64) -> ShadowVerdict {
    let candidate_mape = candidate.mape();
    let serving_mape = serving.mape();
    let promote = candidate.used > 0 && candidate_mape < serving_mape * (1.0 - margin.max(0.0));
    ShadowVerdict {
        promote,
        candidate_mape,
        serving_mape,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_and_count_matches_gnn_semantics() {
        let mut e = ModelEval::default();
        e.score(110.0, 100.0); // 10 % error
        e.score(50.0, 0.0); // zero actual: skipped
        e.score(100.0, 200.0); // 50 % error
        assert_eq!(e.scored, 3);
        assert_eq!(e.used, 2);
        assert_eq!(e.skipped, 1);
        assert!((e.mape() - 30.0).abs() < 1e-9);
        assert!(e.mape().is_finite());
    }

    #[test]
    fn buckets_cumulate_in_le_order() {
        let mut e = ModelEval::default();
        for ratio in [0.05, 0.2, 0.2, 0.4, 0.9, 3.0] {
            e.score(100.0 * (1.0 + ratio), 100.0);
        }
        assert_eq!(e.buckets, [1, 2, 1, 1, 1]);
        let cum = e.cumulative_buckets();
        assert_eq!(cum, [1, 3, 4, 5, 6]);
        assert_eq!(*cum.last().unwrap() as usize, e.used);
        for w in cum.windows(2) {
            assert!(w[1] >= w[0], "cumulative buckets must be monotone");
        }
    }

    #[test]
    fn verdict_requires_margin_beating_improvement() {
        let mut better = ModelEval::default();
        better.score(105.0, 100.0); // 5 %
        let mut worse = ModelEval::default();
        worse.score(120.0, 100.0); // 20 %
        assert!(verdict(&better, &worse, 0.02).promote);
        assert!(!verdict(&worse, &better, 0.02).promote, "worse never wins");
        // Inside the margin: no promotion.
        let mut close = ModelEval::default();
        close.score(119.9, 100.0);
        assert!(!verdict(&close, &worse, 0.02).promote);
        // An all-skipped window never promotes.
        let mut empty = ModelEval::default();
        empty.score(1.0, 0.0);
        assert!(!verdict(&empty, &worse, 0.02).promote);
    }
}
