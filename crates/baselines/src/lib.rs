//! The baseline mappers of the paper's evaluation.
//!
//! Two classes (Section 4.1), all sharing our extended-RAMP loop
//! scheduler as the context-generation back-end for fairness, exactly as
//! the paper configures them:
//!
//! * **Loop-scheduling mappers** — [`Ramp`] (the base scheduler),
//!   [`Lisa`] and [`MapZero`] (the learned schedulers, modeled as the
//!   same scheduler with progressively larger search budgets — see
//!   DESIGN.md's substitution table);
//! * **Program-transformation mappers** — [`Ip`] (loop interchange
//!   before scheduling) and [`Pbp`] (fusion/fission + interchange ranked
//!   by the MII analytical model).
//!
//! Plus the Tab. 6 ablations: [`Al`] (budgeted black-box tuning over the
//! Tab. 1 space, the OpenTuner stand-in) and [`Am`] (PT-Map's full
//! exploration evaluated with the MII model instead of the GNN).

use ptmap_arch::CgraArch;
use ptmap_core::{realize_program, CompileReport, PtMap, PtMapConfig, PtMapError};
use ptmap_eval::{AnalyticalPredictor, EvalConfig, RankMode};
use ptmap_ir::Program;
use ptmap_mapper::MapperConfig;
use ptmap_sim::EnergyModel;
use ptmap_transform::{ExploreConfig, FusionMode};

pub mod al;

pub use al::Al;

/// A baseline mapper producing the same report as PT-Map.
pub trait Baseline {
    /// Display name (paper's label).
    fn name(&self) -> &'static str;

    /// Compiles and simulates a program.
    ///
    /// # Errors
    ///
    /// Propagates [`PtMapError`] (e.g. when no mapping exists — the
    /// paper's "fail" entries in Tab. 6).
    fn run(&self, program: &Program, arch: &CgraArch) -> Result<CompileReport, PtMapError>;
}

/// RAMP: the plain loop-scheduling mapper, no program transformation.
#[derive(Debug, Clone, Default)]
pub struct Ramp {
    /// Back-end configuration.
    pub mapper: MapperConfig,
    /// Energy model.
    pub energy: EnergyModel,
}

impl Baseline for Ramp {
    fn name(&self) -> &'static str {
        "RAMP"
    }

    fn run(&self, program: &Program, arch: &CgraArch) -> Result<CompileReport, PtMapError> {
        realize_program(program, arch, &self.mapper, &self.energy, &[])
    }
}

/// LISA-like baseline: a stronger loop scheduler (larger search budget),
/// still without transformation.
#[derive(Debug, Clone)]
pub struct Lisa {
    /// Back-end configuration (elevated effort).
    pub mapper: MapperConfig,
    /// Energy model.
    pub energy: EnergyModel,
}

impl Default for Lisa {
    fn default() -> Self {
        Lisa {
            mapper: MapperConfig::default().with_effort(3),
            energy: EnergyModel::default(),
        }
    }
}

impl Baseline for Lisa {
    fn name(&self) -> &'static str {
        "LISA"
    }

    fn run(&self, program: &Program, arch: &CgraArch) -> Result<CompileReport, PtMapError> {
        realize_program(program, arch, &self.mapper, &self.energy, &[])
    }
}

/// MapZero-like baseline: the strongest loop scheduler of the comparison.
#[derive(Debug, Clone)]
pub struct MapZero {
    /// Back-end configuration (highest effort).
    pub mapper: MapperConfig,
    /// Energy model.
    pub energy: EnergyModel,
}

impl Default for MapZero {
    fn default() -> Self {
        MapZero {
            mapper: MapperConfig::default().with_effort(6),
            energy: EnergyModel::default(),
        }
    }
}

impl Baseline for MapZero {
    fn name(&self) -> &'static str {
        "MapZero"
    }

    fn run(&self, program: &Program, arch: &CgraArch) -> Result<CompileReport, PtMapError> {
        realize_program(program, arch, &self.mapper, &self.energy, &[])
    }
}

/// IP: joint affine transformation (loop interchange) before pipelining.
/// Realized as PT-Map's pipeline restricted to reordering with the MII
/// analytical model.
#[derive(Debug, Clone)]
pub struct Ip {
    /// Ranking mode (Pareto for the Fig. 8 energy comparison).
    pub mode: RankMode,
    /// Back-end configuration.
    pub mapper: MapperConfig,
    /// Energy model.
    pub energy: EnergyModel,
}

impl Default for Ip {
    fn default() -> Self {
        Ip {
            mode: RankMode::Performance,
            mapper: MapperConfig::default(),
            energy: EnergyModel::default(),
        }
    }
}

impl Ip {
    fn explore_config() -> ExploreConfig {
        ExploreConfig {
            fusion_modes: vec![FusionMode::AsIs],
            tile_sizes: Vec::new(),
            unroll_factors: vec![1],
            max_unroll_dims: 0,
            max_unroll_product: 1,
            reorder_depth: 3,
            max_candidates_per_pnl: 24,
        }
    }
}

impl Baseline for Ip {
    fn name(&self) -> &'static str {
        "IP"
    }

    fn run(&self, program: &Program, arch: &CgraArch) -> Result<CompileReport, PtMapError> {
        let config = PtMapConfig {
            explore: Self::explore_config(),
            eval: EvalConfig::default(),
            mapper: self.mapper.clone(),
            mode: self.mode,
            energy: self.energy,
            ..PtMapConfig::default()
        };
        PtMap::new(Box::new(AnalyticalPredictor), config).compile(program, arch)
    }
}

/// PBP: polyhedral-based pipelining of imperfectly-nested loops — loop
/// fusion/fission and interchange, ranked by the MII analytical model
/// (no tiling or unrolling).
#[derive(Debug, Clone)]
pub struct Pbp {
    /// Ranking mode (Pareto for the Fig. 8 energy comparison).
    pub mode: RankMode,
    /// Back-end configuration.
    pub mapper: MapperConfig,
    /// Energy model.
    pub energy: EnergyModel,
}

impl Default for Pbp {
    fn default() -> Self {
        Pbp {
            mode: RankMode::Performance,
            mapper: MapperConfig::default(),
            energy: EnergyModel::default(),
        }
    }
}

impl Pbp {
    fn explore_config() -> ExploreConfig {
        ExploreConfig {
            fusion_modes: FusionMode::ALL.to_vec(),
            tile_sizes: Vec::new(),
            unroll_factors: vec![1],
            max_unroll_dims: 0,
            max_unroll_product: 1,
            reorder_depth: 3,
            max_candidates_per_pnl: 24,
        }
    }
}

impl Baseline for Pbp {
    fn name(&self) -> &'static str {
        "PBP"
    }

    fn run(&self, program: &Program, arch: &CgraArch) -> Result<CompileReport, PtMapError> {
        let config = PtMapConfig {
            explore: Self::explore_config(),
            eval: EvalConfig::default(),
            mapper: self.mapper.clone(),
            mode: self.mode,
            energy: self.energy,
            ..PtMapConfig::default()
        };
        PtMap::new(Box::new(AnalyticalPredictor), config).compile(program, arch)
    }
}

/// AM (Tab. 6): PT-Map's full exploration with the MII analytical model
/// in place of the GNN. The paper shows it favoring over-coarse
/// candidates whose real IIs make them unmappable; our pipeline surfaces
/// that as extra context-generation attempts or outright failure.
#[derive(Debug, Clone, Default)]
pub struct Am {
    /// Back-end configuration.
    pub mapper: MapperConfig,
    /// Energy model.
    pub energy: EnergyModel,
}

impl Baseline for Am {
    fn name(&self) -> &'static str {
        "AM"
    }

    fn run(&self, program: &Program, arch: &CgraArch) -> Result<CompileReport, PtMapError> {
        let config = PtMapConfig {
            explore: ExploreConfig::default(),
            eval: EvalConfig {
                top_k: 20,
                combine_k: 1,
            },
            mapper: self.mapper.clone(),
            mode: RankMode::Performance,
            energy: self.energy,
            // Paper-faithful AM: first mappable choice wins, no identity
            // guard, and exhausting the top-20 is a "fail" (Tab. 6).
            realize_beam: 1,
            identity_guard: false,
            fallback: false,
            eval_workers: 1,
        };
        PtMap::new(Box::new(AnalyticalPredictor), config).compile(program, arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;

    #[test]
    fn scheduling_baselines_never_transform() {
        let p = ptmap_workloads::micro::gemm(24);
        let arch = presets::s4();
        for b in [
            &Ramp::default() as &dyn Baseline,
            &Lisa::default(),
            &MapZero::default(),
        ] {
            let r = b.run(&p, &arch).unwrap();
            assert_eq!(r.pnls.len(), 1);
            assert_eq!(r.pnls[0].desc, "as-is", "{} transformed the loop", b.name());
        }
    }

    #[test]
    fn stronger_schedulers_not_worse() {
        let p = ptmap_workloads::apps::covariance();
        let arch = presets::r4();
        let ramp = Ramp::default().run(&p, &arch).unwrap();
        let mapzero = MapZero::default().run(&p, &arch).unwrap();
        assert!(
            mapzero.cycles <= ramp.cycles * 11 / 10,
            "MapZero {} should be at most ~RAMP {}",
            mapzero.cycles,
            ramp.cycles
        );
    }

    #[test]
    fn ip_explores_interchange_only() {
        let p = ptmap_workloads::micro::gemm(32);
        let arch = presets::s4();
        let r = Ip::default().run(&p, &arch).unwrap();
        // No unrolled or tiled candidate can be chosen.
        assert!(!r.pnls[0].desc.contains("unroll"));
        assert!(!r.pnls[0].desc.contains("tile"));
    }

    #[test]
    fn pbp_beats_or_matches_ramp_on_gemm() {
        let p = ptmap_workloads::micro::gemm(32);
        let arch = presets::s4();
        let ramp = Ramp::default().run(&p, &arch).unwrap();
        let pbp = Pbp::default().run(&p, &arch).unwrap();
        assert!(
            pbp.cycles <= ramp.cycles,
            "PBP {} vs RAMP {}",
            pbp.cycles,
            ramp.cycles
        );
    }

    #[test]
    fn am_runs_or_fails_gracefully() {
        let p = ptmap_workloads::apps::atax();
        let arch = presets::sl8();
        // Either outcome is valid; it must not panic.
        let _ = Am::default().run(&p, &arch);
    }
}
