//! AL (Tab. 6): budgeted black-box tuning over the Tab. 1 space — the
//! OpenTuner stand-in.
//!
//! Each trial samples a fusion mode, a random loop order per PNL, an
//! optional innermost tile, and a random unroll vector, then *measures*
//! the candidate by actually mapping and simulating it (black-box tuners
//! have no model). Illegal transformations and unmappable candidates
//! burn budget without producing a result — the volatility the paper
//! reports, especially for programs with many PNLs.

use crate::Baseline;
use ptmap_arch::CgraArch;
use ptmap_core::{realize_program, CompileReport, PtMapError};
use ptmap_ir::{LoopId, Program};
use ptmap_mapper::MapperConfig;
use ptmap_sim::EnergyModel;
use ptmap_transform::explore::apply_fusion_mode;
use ptmap_transform::{primitives, FusionMode};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The black-box tuning baseline.
#[derive(Debug, Clone)]
pub struct Al {
    /// Candidate evaluations (the paper gave OpenTuner four hours; the
    /// default here is a scaled-down budget, see DESIGN.md).
    pub budget: usize,
    /// RNG seed.
    pub seed: u64,
    /// Back-end configuration.
    pub mapper: MapperConfig,
    /// Energy model.
    pub energy: EnergyModel,
}

impl Default for Al {
    fn default() -> Self {
        Al {
            budget: 40,
            seed: 0xA1,
            mapper: MapperConfig::default(),
            energy: EnergyModel::default(),
        }
    }
}

impl Al {
    /// Draws and evaluates one random candidate; `None` when the sampled
    /// transformation is illegal or unmappable.
    fn trial(&self, program: &Program, arch: &CgraArch, rng: &mut StdRng) -> Option<CompileReport> {
        let mode = *[
            FusionMode::AsIs,
            FusionMode::NoFuse,
            FusionMode::MaxFuse,
            FusionMode::SmartFuse,
        ]
        .choose(rng)
        .expect("non-empty");
        let mut p = apply_fusion_mode(program, mode);
        let nests = p.perfect_nests();
        let mut unroll_per_pnl: Vec<Vec<(LoopId, u32)>> = Vec::new();
        for nest in &nests {
            // Random loop order over the whole chain.
            let mut order = nest.loops.clone();
            order.shuffle(rng);
            if order != nest.loops {
                match primitives::reorder(&p, nest.loops[0], &order) {
                    Ok(q) => p = q,
                    Err(_) => return None, // illegal sample: budget burned
                }
            }
            let pipelined = *order.last().expect("nest non-empty");
            // Random innermost tile.
            if rng.gen_bool(0.4) {
                let tile = 1u64 << rng.gen_range(4..=10);
                match primitives::strip_mine(&p, pipelined, tile) {
                    Ok((q, _)) => p = q,
                    Err(_) => return None,
                }
            }
            // Random unroll of the (current) pipelined loop.
            let f = *[1u32, 2, 4, 8].choose(rng).expect("non-empty");
            unroll_per_pnl.push(if f > 1 {
                vec![(pipelined, f)]
            } else {
                Vec::new()
            });
        }
        // Re-align unroll vectors with the transformed program's nests.
        let nests_now = p.perfect_nests();
        if nests_now.len() != unroll_per_pnl.len() {
            return None;
        }
        realize_program(&p, arch, &self.mapper, &self.energy, &unroll_per_pnl).ok()
    }
}

impl Baseline for Al {
    fn name(&self) -> &'static str {
        "AL"
    }

    fn run(&self, program: &Program, arch: &CgraArch) -> Result<CompileReport, PtMapError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<CompileReport> = None;
        for _ in 0..self.budget {
            if let Some(r) = self.trial(program, arch, &mut rng) {
                if best.as_ref().is_none_or(|b| r.cycles < b.cycles) {
                    best = Some(r);
                }
            }
        }
        best.ok_or(PtMapError::NothingMappable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;

    #[test]
    fn al_finds_some_mapping_on_gemm() {
        let p = ptmap_workloads::micro::gemm(24);
        let al = Al {
            budget: 12,
            ..Al::default()
        };
        let r = al.run(&p, &presets::s4()).unwrap();
        assert!(r.cycles > 0);
    }

    #[test]
    fn al_is_seed_sensitive() {
        let p = ptmap_workloads::micro::gemm(24);
        let arch = presets::s4();
        let a = Al {
            budget: 6,
            seed: 1,
            ..Al::default()
        }
        .run(&p, &arch);
        let b = Al {
            budget: 6,
            seed: 2,
            ..Al::default()
        }
        .run(&p, &arch);
        // Different seeds explore different candidates; both may succeed
        // but typically with different quality (volatility).
        if let (Ok(a), Ok(b)) = (a, b) {
            // No assertion on inequality (could coincide); just sanity.
            assert!(a.cycles > 0 && b.cycles > 0);
        }
    }

    #[test]
    fn bigger_budget_not_worse() {
        let p = ptmap_workloads::micro::gemm(24);
        let arch = presets::s4();
        let small = Al {
            budget: 4,
            seed: 7,
            ..Al::default()
        }
        .run(&p, &arch);
        let large = Al {
            budget: 24,
            seed: 7,
            ..Al::default()
        }
        .run(&p, &arch);
        if let (Ok(s), Ok(l)) = (small, large) {
            assert!(l.cycles <= s.cycles);
        }
    }
}
