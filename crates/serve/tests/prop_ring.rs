//! Property tests for the consistent-hash ring.
//!
//! The ring's whole value is two invariants that unit tests can only
//! spot-check: the mapping is a pure function of the peer *set*
//! (insertion order must never matter), and membership changes move
//! only the keys they must — a single join steals ~K/N keys for the
//! new peer and a single leave scatters only the dead peer's keys,
//! with every key between two surviving peers staying put.

use proptest::prelude::*;
use ptmap_serve::HashRing;

/// Arbitrary peer sets: ids mapped to `host<i>:7<i>`-style names, with
/// duplicates collapsed by the ring itself.
fn peer_names(max: usize) -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(0u64..40, 1..max).prop_map(|ids| {
        ids.into_iter()
            .map(|i| format!("host{i}:70{i:02}"))
            .collect()
    })
}

/// A workload of keys shaped like real request keys.
fn keys(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("sha256:{i:08x}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Owner assignment is independent of the order peers were listed.
    #[test]
    fn owner_is_insertion_order_independent(
        peers in peer_names(8),
        shuffle_seed in 0u64..1000,
    ) {
        let a = HashRing::new(&peers);
        // A deterministic permutation derived from the seed.
        let mut shuffled = peers.clone();
        let len = shuffled.len();
        for i in 0..len {
            let j = ((shuffle_seed as usize).wrapping_mul(31).wrapping_add(i * 7)) % len;
            shuffled.swap(i, j);
        }
        let b = HashRing::new(&shuffled);
        prop_assert_eq!(a.peers(), b.peers(), "peer set must normalize identically");
        for key in keys(64) {
            let oa = a.owner(&key).map(|i| a.peers()[i].clone());
            let ob = b.owner(&key).map(|i| b.peers()[i].clone());
            prop_assert_eq!(oa, ob, "owner of {} depends on insertion order", key);
        }
    }

    /// Adding one peer moves keys ONLY onto the new peer, and roughly
    /// its fair share of them.
    #[test]
    fn single_join_moves_about_one_nth(peers in peer_names(8), extra_id in 0u64..40) {
        // The "fresh:" prefix keeps the newcomer disjoint from the
        // "host..." names peer_names generates.
        let extra = format!("fresh{extra_id}:8000");
        let before = HashRing::new(&peers);
        let mut grown: Vec<String> = peers.clone();
        grown.push(extra.clone());
        let after = HashRing::new(&grown);
        prop_assert_eq!(after.len(), before.len() + 1);

        let workload = keys(1200);
        let mut moved = 0usize;
        for key in &workload {
            let old = &before.peers()[before.owner(key).unwrap()];
            let new = &after.peers()[after.owner(key).unwrap()];
            if old != new {
                prop_assert_eq!(
                    new, &extra,
                    "{} moved between surviving peers on a join", key
                );
                moved += 1;
            }
        }
        // Expect ~K/N with wide tolerance: consistent hashing is
        // statistical, not exact. With 64 vnodes the share stays well
        // inside [fair/4, fair*4] in practice.
        let fair = workload.len() / after.len();
        prop_assert!(
            moved <= fair * 4,
            "join moved {} keys, fair share is {}", moved, fair
        );
        if after.len() <= 6 {
            prop_assert!(
                moved >= fair / 4,
                "join moved only {} keys, fair share is {}", moved, fair
            );
        }
    }

    /// Removing one peer scatters only that peer's keys; keys owned by
    /// survivors never move.
    #[test]
    fn single_leave_moves_only_the_dead_peers_keys(
        peers in peer_names(8),
        victim_pick in 0usize..8,
    ) {
        let before = HashRing::new(&peers);
        prop_assume!(before.len() >= 2);
        let victim = before.peers()[victim_pick % before.len()].clone();
        let survivors: Vec<String> = before
            .peers()
            .iter()
            .filter(|p| **p != victim)
            .cloned()
            .collect();
        let after = HashRing::new(&survivors);

        for key in keys(600) {
            let old = &before.peers()[before.owner(&key).unwrap()];
            let new = &after.peers()[after.owner(&key).unwrap()];
            if old != &victim {
                prop_assert_eq!(
                    old, new,
                    "{} moved off surviving peer {} when {} left", key, old, victim
                );
            }
        }
    }

    /// The replica sequence is a permutation of all peers starting at
    /// the owner — the failover walk visits everyone exactly once.
    #[test]
    fn replicas_are_a_permutation_from_the_owner(peers in peer_names(8)) {
        let ring = HashRing::new(&peers);
        for key in keys(48) {
            let reps = ring.replicas(&key);
            prop_assert_eq!(reps.len(), ring.len());
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), ring.len(), "replicas repeat a peer");
            prop_assert_eq!(reps[0], ring.owner(&key).unwrap());
        }
    }
}
