//! End-to-end tests of `ptmap serve --learn`: live sample capture,
//! background training, shadow verdicts, snapshot persistence across
//! restarts, `GET /model`, and the determinism guarantee (learning on
//! never changes compile results).

use ptmap_gnn::{ModelConfig, TrainConfig};
use ptmap_learn::LearnConfig;
use ptmap_serve::metrics::check_prometheus_text;
use ptmap_serve::{DrainSummary, ServeConfig, Server, ServerHandle};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Boots an in-process server on an ephemeral port.
fn boot(
    config: ServeConfig,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<DrainSummary>,
) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        drain_timeout: Duration::from_secs(5),
        ..config
    };
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

/// A learn config small enough to train inside a test.
fn tiny_learn(dir: Option<PathBuf>) -> LearnConfig {
    LearnConfig {
        model_dir: dir,
        train_threshold: 4,
        shadow_window: 4,
        promote_margin: 0.02,
        train: TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        },
        model: ModelConfig {
            hidden: 8,
            layers: 2,
            ..ModelConfig::default()
        },
        ..LearnConfig::default()
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ptmap-learn-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sends one request and reads the full response body.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: ptmap\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_string())
}

fn compile_spec(name: &str, kernel: &str) -> String {
    format!("{{\"name\":\"{name}\",\"kernel\":\"{kernel}\",\"arch\":\"S4\"}}")
}

/// Parses `GET /model` output.
fn model_status(addr: SocketAddr) -> Value {
    let (status, body) = http(addr, "GET", "/model", "");
    assert_eq!(status, 200, "GET /model: {body}");
    serde_json::from_str(&body).expect("model status parses")
}

fn status_u64(status: &Value, field: &str) -> u64 {
    match status {
        Value::Object(fields) => fields
            .iter()
            .find(|(n, _)| n == field)
            .and_then(|(_, v)| match v {
                Value::UInt(n) => Some(*n),
                Value::Int(n) => Some(*n as u64),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no numeric field {field} in {status:?}")),
        other => panic!("status is not an object: {other:?}"),
    }
}

fn wait_for(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if done() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("timed out waiting for {what}");
}

/// Extracts `metric value` (no labels) from a Prometheus document.
fn metric_value(text: &str, metric: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(metric) && l.as_bytes().get(metric.len()) == Some(&b' '))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

#[test]
fn learning_lifecycle_smoke_and_snapshot_reload() {
    let dir = scratch("smoke");
    let (addr, handle, runner) = boot(ServeConfig {
        learn: Some(tiny_learn(Some(dir.clone()))),
        ..ServeConfig::default()
    });

    // Boot seeds version 1 and persists it before serving traffic.
    let status = model_status(addr);
    assert_eq!(status_u64(&status, "version"), 1);
    assert!(dir.join("model-v1.bin").exists(), "boot snapshot exists");

    // Drive distinct compiles (distinct kernels, so none cache-hit or
    // coalesce away) until a full train → shadow → verdict lifecycle
    // has run.
    for i in 0..16u32 {
        let (status, body) = http(
            addr,
            "POST",
            "/compile",
            &compile_spec(&format!("learn-{i}"), &format!("vecsum:{}", 8 + i)),
        );
        assert_eq!(status, 200, "compile {i}: {body}");
    }
    wait_for("a shadow verdict", Duration::from_secs(60), || {
        let s = model_status(addr);
        status_u64(&s, "promotions") + status_u64(&s, "rejections") >= 1
    });

    let status = model_status(addr);
    assert!(status_u64(&status, "samples_total") >= 16);
    assert!(status_u64(&status, "trainings") >= 1);
    let final_version = status_u64(&status, "version");

    // The metrics document carries the learning series and stays valid.
    let (code, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(code, 200);
    check_prometheus_text(&metrics).expect("metrics must stay parseable with --learn");
    assert_eq!(
        metric_value(&metrics, "ptmap_model_version"),
        Some(final_version as f64)
    );
    assert!(metric_value(&metrics, "ptmap_learn_samples_total").unwrap_or(0.0) >= 16.0);
    assert!(metric_value(&metrics, "ptmap_learn_trainings_total").unwrap_or(0.0) >= 1.0);
    assert!(metric_value(&metrics, "ptmap_learn_shadow_scores_total").unwrap_or(0.0) >= 1.0);
    assert_eq!(
        metric_value(&metrics, "ptmap_predictor_fallbacks_total"),
        Some(0.0),
        "no job referenced a broken gnn model"
    );
    // The spill log exists and is per-line checksummed.
    let spill = std::fs::read_to_string(dir.join("samples.jsonl")).expect("spill log");
    assert!(spill.lines().count() >= 16);
    for line in spill.lines() {
        let (sum, json) = line.split_once(' ').expect("checksummed line");
        assert_eq!(sum.len(), 64);
        assert!(json.starts_with('{'));
    }

    handle.shutdown();
    runner.join().expect("server thread");

    // A restart restores the persisted version — promoted or not, the
    // snapshot round-trips.
    let (addr2, handle2, runner2) = boot(ServeConfig {
        learn: Some(tiny_learn(Some(dir.clone()))),
        ..ServeConfig::default()
    });
    let reborn = model_status(addr2);
    assert_eq!(
        status_u64(&reborn, "version"),
        final_version,
        "restart must reload the latest snapshot"
    );
    handle2.shutdown();
    runner2.join().expect("second server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Drops the wall-clock field (`compile_seconds`) everywhere — the
/// compile result is deterministic, the clock is not.
fn strip_timing(v: Value) -> Value {
    match v {
        Value::Object(fields) => Value::Object(
            fields
                .into_iter()
                .filter(|(n, _)| n != "compile_seconds")
                .map(|(n, v)| (n, strip_timing(v)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.into_iter().map(strip_timing).collect()),
        other => other,
    }
}

#[test]
fn learning_does_not_change_compile_results() {
    // The tap is observe-only: the same compile must produce an
    // identical report (and therefore identical cache keys) with
    // learning on and off.
    let compile_report = |learn: Option<LearnConfig>| -> Value {
        let (addr, handle, runner) = boot(ServeConfig {
            learn,
            ..ServeConfig::default()
        });
        let (status, body) = http(addr, "POST", "/compile", &compile_spec("det", "gemm:12"));
        assert_eq!(status, 200, "{body}");
        handle.shutdown();
        runner.join().expect("server thread");
        let outcome: Value = serde_json::from_str(&body).expect("outcome parses");
        match outcome {
            Value::Object(fields) => fields
                .into_iter()
                .find(|(n, _)| n == "report")
                .map(|(_, v)| strip_timing(v))
                .expect("outcome has a report"),
            other => panic!("outcome is not an object: {other:?}"),
        }
    };
    let without = compile_report(None);
    let with = compile_report(Some(tiny_learn(None)));
    assert_eq!(
        without, with,
        "--learn must be bit-identical to a learning-free daemon"
    );
}

#[test]
fn model_endpoint_is_404_without_learn() {
    let (addr, handle, runner) = boot(ServeConfig::default());
    let (status, body) = http(addr, "GET", "/model", "");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("--learn"));
    // And the learning series stay out of /metrics.
    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert!(!metrics.contains("ptmap_learn_samples_total"));
    assert!(metrics.contains("ptmap_predictor_fallbacks_total 0"));
    handle.shutdown();
    runner.join().expect("server thread");
}
