//! End-to-end tests of the `ptmap` command-line compiler.

use std::io::Write;
use std::process::Command;

fn ptmap() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ptmap"))
}

fn write_kernel(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ptmap-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(text.as_bytes()).unwrap();
    path
}

const KERNEL: &str = r#"
    int A[32][32]; int B[32][32]; int C[32][32];
    #pragma PTMAP
    for (i = 0; i < 32; i++) {
        for (j = 0; j < 32; j++) {
            for (k = 0; k < 32; k++) {
                C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }
        }
    }
    #pragma ENDMAP
"#;

#[test]
fn archs_lists_presets() {
    let out = ptmap().arg("archs").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["S4", "R4", "H6", "SL8", "HReA4"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn parse_round_trips() {
    let path = write_kernel("parse.c", KERNEL);
    let out = ptmap()
        .args(["parse", "--source"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("for (i = 0; i < 32; i++)"));
    assert!(text.contains("; 1 PNLs"));
}

#[test]
fn compile_reports_cycles() {
    let path = write_kernel("compile.c", KERNEL);
    let out = ptmap()
        .args(["compile", "--source"])
        .arg(&path)
        .args(["--arch", "S4"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cycles"), "{text}");
    assert!(text.contains("PNL 0"));
}

#[test]
fn compile_emit_contexts_disassembles() {
    let path = write_kernel("ctx.c", KERNEL);
    let out = ptmap()
        .args(["compile", "--source"])
        .arg(&path)
        .args(["--arch", "S4", "--emit-contexts"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("context image, II ="));
    assert!(text.contains("mul"));
}

#[test]
fn unknown_arch_fails_cleanly() {
    let path = write_kernel("bad.c", KERNEL);
    let out = ptmap()
        .args(["compile", "--source"])
        .arg(&path)
        .args(["--arch", "Z9"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown architecture"));
}

#[test]
fn parse_error_is_reported() {
    let path = write_kernel(
        "syntax.c",
        "int A[4]; for (i = 1; i < 4; i++) { A[i] = 0; }",
    );
    let out = ptmap()
        .args(["parse", "--source"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("normalized"));
}

#[test]
fn equals_form_flags_accepted() {
    let path = write_kernel("eq.c", KERNEL);
    let out = ptmap()
        .arg("compile")
        .arg(format!("--source={}", path.display()))
        .arg("--arch=S4")
        .arg("--mode=performance")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("cycles"));
}

#[test]
fn unrecognized_flag_is_usage_error() {
    let path = write_kernel("unk.c", KERNEL);
    for extra in ["--frobnicate", "--frobnicate=3", "stray-positional"] {
        let out = ptmap()
            .args(["compile", "--source"])
            .arg(&path)
            .args(["--arch", "S4", extra])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "arg {extra} must exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }
}

#[test]
fn trace_sample_without_trace_dir_is_usage_error() {
    for flag in ["--trace-sample=0.5", "--trace-slow-ms=100"] {
        let out = ptmap()
            .args(["batch", "--manifest", "does-not-matter.json", flag])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{flag} must exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("require --trace-dir"), "{flag}: {err}");
        assert!(err.contains("usage:"), "{flag}: {err}");
    }
}

#[test]
fn value_flag_without_value_is_usage_error() {
    let out = ptmap().args(["compile", "--source"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--source needs a value"));
}

#[test]
fn help_and_version_exit_zero() {
    for arg in ["help", "--help", "-h"] {
        let out = ptmap().arg(arg).output().unwrap();
        assert_eq!(out.status.code(), Some(0), "{arg}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("usage: ptmap"), "{arg}: {text}");
        assert!(text.contains("serve"), "{arg} must list serve: {text}");
    }
    for arg in ["version", "--version", "-V"] {
        let out = ptmap().arg(arg).output().unwrap();
        assert_eq!(out.status.code(), Some(0), "{arg}");
        assert!(String::from_utf8_lossy(&out.stdout).starts_with("ptmap "));
    }
}

#[test]
fn unknown_subcommand_exits_two_with_usage() {
    for args in [vec!["frobnicate"], vec![]] {
        let out = ptmap().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(out.stdout.is_empty(), "usage goes to stderr, not stdout");
        assert!(String::from_utf8_lossy(&out.stderr).contains("usage: ptmap"));
    }
}

#[test]
fn serve_bad_flags_exit_two() {
    let cases: &[&[&str]] = &[
        &["serve", "--workers", "zero"],
        &["serve", "--deadline", "-3"],
        &["serve", "--frobnicate"],
        // Learning sub-flags require --learn.
        &["serve", "--model-dir", "/tmp/models"],
        &["serve", "--train-threshold", "8"],
        &["serve", "--shadow-window", "8"],
        &["serve", "--promote-margin", "0.05"],
        // And their values must parse.
        &["serve", "--learn", "--train-threshold", "zero"],
        &["serve", "--learn", "--promote-margin", "1.5"],
    ];
    for args in cases {
        let out = ptmap().args(*args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    }
}

#[test]
fn gateway_bad_flags_exit_two() {
    let cases: &[&[&str]] = &[
        // --peers is mandatory.
        &["gateway"],
        // Empty entries in the peer list are rejected.
        &["gateway", "--peers", "127.0.0.1:7100,,127.0.0.1:7101"],
        &[
            "gateway",
            "--peers",
            "127.0.0.1:7100",
            "--max-retries",
            "many",
        ],
        &["gateway", "--peers", "127.0.0.1:7100", "--frobnicate"],
    ];
    for args in cases {
        let out = ptmap().args(*args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage:"),
            "{args:?}"
        );
    }
}

#[test]
fn loadtest_bad_flags_exit_two() {
    let cases: &[&[&str]] = &[
        &["loadtest", "--workers", "zero"],
        &["loadtest", "--requests", "-1"],
        &["loadtest", "--frobnicate"],
    ];
    for args in cases {
        let out = ptmap().args(*args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage:"),
            "{args:?}"
        );
    }
}

#[test]
fn help_lists_gateway_and_loadtest() {
    let out = ptmap().arg("help").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("gateway"), "{text}");
    assert!(text.contains("loadtest"), "{text}");
    assert!(text.contains("--peers"), "{text}");
}

#[test]
fn loadtest_against_nothing_exits_nonzero_with_report() {
    // Port 1 is never listening; every request must fail as a connect
    // error and the exit code must reflect it.
    let out = ptmap()
        .args([
            "loadtest",
            "--target",
            "127.0.0.1:1",
            "--workers",
            "2",
            "--requests",
            "4",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "failures must exit nonzero");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("loadtest sent: 4"), "{text}");
    assert!(text.contains("loadtest failed: 4"), "{text}");
    assert!(text.contains("error connect:"), "{text}");
}

#[test]
fn batch_runs_manifest_and_warms_cache() {
    let dir = std::env::temp_dir().join(format!("ptmap-cli-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("jobs.json");
    std::fs::write(
        &manifest,
        r#"{"jobs": [
            {"kernel": "gemm:24", "arch": "S4"},
            {"kernel": "gemm:24", "arch": "R4"},
            {"kernel": "vecsum:64", "arch": "S4", "mode": "pareto"}
        ]}"#,
    )
    .unwrap();
    let cache = dir.join("cache");
    let metrics = dir.join("metrics.json");
    let run = |jobs: &str| {
        ptmap()
            .arg("batch")
            .arg(format!("--manifest={}", manifest.display()))
            .args(["--jobs", jobs])
            .arg(format!("--cache-dir={}", cache.display()))
            .arg(format!("--metrics={}", metrics.display()))
            .output()
            .unwrap()
    };

    let cold = run("2");
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let text = String::from_utf8_lossy(&cold.stdout);
    assert!(text.contains("gemm:24@S4"), "{text}");
    assert!(text.contains("0 cache hits, 3 misses"), "{text}");
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        metrics_text.contains("\"cache_misses\": 3"),
        "{metrics_text}"
    );
    assert!(metrics_text.contains("explore_seconds"), "{metrics_text}");

    // Second run: the on-disk cache satisfies every job.
    let warm = run("1");
    assert!(warm.status.success());
    let text = String::from_utf8_lossy(&warm.stdout);
    assert!(text.contains("3 cache hits, 0 misses"), "{text}");
    assert!(text.contains("[cached]"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_bad_manifest_fails_cleanly() {
    let path = write_kernel("notjson.json", "{ nope");
    let out = ptmap()
        .args(["batch", "--manifest"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("manifest"));
}
