//! End-to-end tests of the `ptmap gateway` front: consistent-hash
//! routing, breaker-driven failover, async-job continuity across a
//! dead owner, and the cluster metrics contract.
//!
//! Each test boots real daemons ([`Server`]) and a real gateway
//! ([`Gateway`]) in-process on ephemeral ports; faults are injected
//! through the governor's faultpoints, scoped to one peer's address so
//! concurrently running tests (all on distinct ports) cannot see each
//! other's faults.

use ptmap_governor::faultpoint;
use ptmap_serve::metrics::check_prometheus_text;
use ptmap_serve::{
    run_loadtest, DrainSummary, Gateway, GatewayConfig, GatewayHandle, GatewaySummary,
    LoadtestConfig, ServeConfig, Server, ServerHandle,
};
use ptmap_trace::AttrValue;
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One in-process daemon.
struct Daemon {
    addr: SocketAddr,
    handle: ServerHandle,
    runner: std::thread::JoinHandle<DrainSummary>,
}

impl Daemon {
    fn boot() -> Daemon {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            drain_timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        })
        .expect("bind daemon");
        let addr = server.local_addr().expect("daemon addr");
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());
        Daemon {
            addr,
            handle,
            runner,
        }
    }

    fn stop(self) {
        self.handle.shutdown();
        let _ = self.runner.join();
    }
}

/// An in-process gateway over the given peers, with chaos-friendly
/// (fast) probe and breaker settings.
struct Gw {
    addr: SocketAddr,
    handle: GatewayHandle,
    runner: std::thread::JoinHandle<GatewaySummary>,
}

impl Gw {
    fn boot(peers: &[SocketAddr], tweak: impl FnOnce(&mut GatewayConfig)) -> Gw {
        let mut config = GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            peers: peers.iter().map(|a| a.to_string()).collect(),
            probe_interval: Duration::from_millis(50),
            failure_threshold: 2,
            cooldown: Duration::from_millis(200),
            drain_timeout: Duration::from_secs(5),
            ..GatewayConfig::default()
        };
        tweak(&mut config);
        let gateway = Gateway::bind(config).expect("bind gateway");
        let addr = gateway.local_addr().expect("gateway addr");
        let handle = gateway.handle();
        let runner = std::thread::spawn(move || gateway.run());
        Gw {
            addr,
            handle,
            runner,
        }
    }

    fn stop(self) -> GatewaySummary {
        self.handle.shutdown();
        self.runner.join().expect("gateway run loop")
    }
}

/// One parsed HTTP response.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn http(addr: SocketAddr, method: &str, path: &str, headers: &[(&str, &str)], body: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: ptmap\r\n");
    for (name, value) in headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    // Note: no write-half shutdown here — the daemons treat a closed
    // client as a disconnect and cancel the request's budget.
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

fn compile_spec(name: &str, kernel: &str) -> String {
    format!("{{\"name\":\"{name}\",\"kernel\":\"{kernel}\",\"arch\":\"S4\"}}")
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"))
}

/// Polls `check` until it passes or `within` elapses.
fn wait_for(within: Duration, what: &str, mut check: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !check() {
        assert!(t0.elapsed() < within, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Extracts `metric{...label_part...} value` from a Prometheus doc.
fn labelled_value(text: &str, metric: &str, label_part: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(metric) && l.contains(label_part))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

fn metric_value(text: &str, metric: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(metric) && l.as_bytes().get(metric.len()) == Some(&b' '))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

/// Sums every labelled series of `metric` (e.g. a per-peer rollup).
fn metric_sum(text: &str, metric: &str) -> f64 {
    text.lines()
        .filter(|l| l.starts_with(metric) && l.as_bytes().get(metric.len()) == Some(&b'{'))
        .filter_map(|l| l.rsplit_once(' '))
        .filter_map(|(_, v)| v.parse::<f64>().ok())
        .sum()
}

#[test]
fn gateway_routes_compiles_and_relays_daemon_bytes() {
    let daemons: Vec<Daemon> = (0..3).map(|_| Daemon::boot()).collect();
    let peers: Vec<SocketAddr> = daemons.iter().map(|d| d.addr).collect();
    let gw = Gw::boot(&peers, |_| {});

    // Route a compile through the gateway.
    let spec = compile_spec("routed", "vecsum:16");
    let via_gw = http(gw.addr, "POST", "/compile", &[], &spec);
    assert_eq!(via_gw.status, 200, "{}", via_gw.body);
    let owner: SocketAddr = via_gw
        .header("x-ptmap-peer")
        .expect("gateway stamps the answering peer")
        .parse()
        .expect("peer header is an address");
    assert!(peers.contains(&owner), "peer {owner} is not in the cluster");

    // The same spec sent directly to the owner is a cache hit with the
    // exact same report: the gateway relayed the daemon's bytes, it did
    // not re-encode or re-compile.
    let direct = http(owner, "POST", "/compile", &[], &spec);
    assert_eq!(direct.status, 200, "{}", direct.body);
    let direct_doc = json(&direct.body);
    assert_eq!(
        direct_doc.get("cache_hit"),
        Some(&Value::Bool(true)),
        "owner must already hold this key: {}",
        direct.body
    );
    assert_eq!(
        json(&via_gw.body).get("report"),
        direct_doc.get("report"),
        "gateway-relayed report differs from the owner's"
    );

    // Repeats of the same key stay on the same peer (cache affinity).
    for _ in 0..3 {
        let again = http(gw.addr, "POST", "/compile", &[], &spec);
        assert_eq!(again.status, 200);
        assert_eq!(
            again.header("x-ptmap-peer"),
            Some(owner.to_string().as_str())
        );
        assert_eq!(json(&again.body).get("cache_hit"), Some(&Value::Bool(true)));
    }

    // Different keys (distinct kernels — the job name is not part of
    // the request key) spread over the ring, but every reply names a
    // cluster member.
    for i in 0..6 {
        let spec = compile_spec(&format!("spread-{i}"), &format!("vecsum:{}", 8 + 4 * i));
        let reply = http(gw.addr, "POST", "/compile", &[], &spec);
        assert_eq!(reply.status, 200, "{}", reply.body);
        let peer: SocketAddr = reply.header("x-ptmap-peer").unwrap().parse().unwrap();
        assert!(peers.contains(&peer));
    }

    // /healthz and /cluster agree: three live peers.
    let health = http(gw.addr, "GET", "/healthz", &[], "");
    assert_eq!(health.status, 200, "{}", health.body);
    assert!(
        health.body.contains("\"peers_available\":3"),
        "{}",
        health.body
    );
    let cluster = json(&http(gw.addr, "GET", "/cluster", &[], "").body);
    assert_eq!(cluster.get("available"), Some(&Value::Int(3)));
    assert_eq!(
        cluster.get("peers").and_then(Value::as_array).map(Vec::len),
        Some(3)
    );

    let summary = gw.stop();
    assert!(summary.clean);
    assert!(
        summary.forwards >= 1,
        "at least the first compile forwarded"
    );
    for d in daemons {
        d.stop();
    }
}

#[test]
fn gateway_rejects_malformed_headers_before_forwarding() {
    let daemon = Daemon::boot();
    let gw = Gw::boot(&[daemon.addr], |_| {});
    let spec = compile_spec("hdr", "vecsum:8");

    for path in ["/compile", "/jobs"] {
        let bad_deadline = http(
            gw.addr,
            "POST",
            path,
            &[("X-Ptmap-Deadline-Ms", "soon")],
            &spec,
        );
        assert_eq!(bad_deadline.status, 400, "{}", bad_deadline.body);
        assert!(
            bad_deadline.body.contains("\"reason\":\"bad-deadline\""),
            "{}",
            bad_deadline.body
        );

        let bad_quality = http(
            gw.addr,
            "POST",
            path,
            &[("X-Ptmap-Quality", "speedy")],
            &spec,
        );
        assert_eq!(bad_quality.status, 400, "{}", bad_quality.body);
        assert!(
            bad_quality.body.contains("\"reason\":\"bad-quality\""),
            "{}",
            bad_quality.body
        );
    }

    // Unroutable bodies are client errors, not forwards.
    assert_eq!(http(gw.addr, "POST", "/compile", &[], "{ nope").status, 400);
    assert_eq!(
        http(
            gw.addr,
            "POST",
            "/compile",
            &[],
            "{\"kernel\":\"nope:1\",\"arch\":\"S4\"}"
        )
        .status,
        400
    );

    gw.stop();
    daemon.stop();
}

#[test]
fn breaker_ejects_failing_peer_and_readmits_after_recovery() {
    let daemons: Vec<Daemon> = (0..3).map(|_| Daemon::boot()).collect();
    let peers: Vec<SocketAddr> = daemons.iter().map(|d| d.addr).collect();
    let sick = peers[0].to_string();

    // Fail health probes for peer 0 only (scoped by address), from
    // before the gateway boots so its very first probes fail.
    let fault = faultpoint::install(&format!("peer_health:refuse@{sick}")).unwrap();
    let gw = Gw::boot(&peers, |_| {});

    let peer_state = |addr: &str| -> String {
        let cluster = json(&http(gw.addr, "GET", "/cluster", &[], "").body);
        cluster
            .get("peers")
            .and_then(Value::as_array)
            .and_then(|ps| {
                ps.iter()
                    .find(|p| p.get("addr").and_then(Value::as_str) == Some(addr))
            })
            .and_then(|p| p.get("state"))
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string()
    };

    // threshold=2 at a 50ms probe interval: the breaker must open
    // within a couple of probe rounds.
    wait_for(Duration::from_secs(10), "breaker to open", || {
        peer_state(&sick) == "open"
    });

    // While ejected, the cluster still serves: the sick peer is
    // demoted, never first choice.
    for i in 0..4 {
        let spec = compile_spec(&format!("around-{i}"), "vecsum:8");
        let reply = http(gw.addr, "POST", "/compile", &[], &spec);
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert_ne!(
            reply.header("x-ptmap-peer"),
            Some(sick.as_str()),
            "ejected peer must not be routed to while healthy peers exist"
        );
    }

    // Lift the fault: cooldown (200ms) passes, a probe succeeds in
    // half-open, and the breaker closes again.
    drop(fault);
    wait_for(Duration::from_secs(10), "breaker to close", || {
        peer_state(&sick) == "closed"
    });

    // The journey is visible in the metrics: probes failed, the
    // breaker opened, and it transitioned back to closed.
    let text = gw.handle.metrics_text();
    check_prometheus_text(&text).expect("valid gateway metrics");
    let sick_label = format!("peer=\"{sick}\"");
    assert!(
        labelled_value(
            &text,
            "ptmap_gateway_probes_total",
            &format!("{sick_label},outcome=\"failed\"")
        )
        .unwrap_or(0.0)
            >= 2.0,
        "{text}"
    );
    assert!(
        labelled_value(
            &text,
            "ptmap_gateway_breaker_transitions_total",
            &format!("{sick_label},state=\"open\"")
        )
        .unwrap_or(0.0)
            >= 1.0,
        "{text}"
    );
    assert!(
        labelled_value(
            &text,
            "ptmap_gateway_breaker_transitions_total",
            &format!("{sick_label},state=\"closed\"")
        )
        .unwrap_or(0.0)
            >= 1.0,
        "{text}"
    );

    gw.stop();
    for d in daemons {
        d.stop();
    }
}

#[test]
fn sync_compiles_fail_over_when_the_owner_refuses() {
    let daemons: Vec<Daemon> = (0..3).map(|_| Daemon::boot()).collect();
    let peers: Vec<SocketAddr> = daemons.iter().map(|d| d.addr).collect();
    let gw = Gw::boot(&peers, |_| {});

    // Learn which peer owns this key.
    let spec = compile_spec("failover", "vecsum:12");
    let first = http(gw.addr, "POST", "/compile", &[], &spec);
    assert_eq!(first.status, 200, "{}", first.body);
    let owner = first.header("x-ptmap-peer").unwrap().to_string();

    // Refuse all gateway forwards to the owner; the same key must be
    // served by the next ring replica.
    let _fault = faultpoint::install(&format!("gateway_forward:refuse@{owner}")).unwrap();
    let reply = http(gw.addr, "POST", "/compile", &[], &spec);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let stand_in = reply.header("x-ptmap-peer").unwrap().to_string();
    assert_ne!(stand_in, owner, "the refused owner cannot have answered");

    let text = gw.handle.metrics_text();
    assert!(
        metric_value(&text, "ptmap_gateway_retries_total").unwrap_or(0.0) >= 1.0,
        "failover must be counted as a retry:\n{text}"
    );
    assert!(
        labelled_value(
            &text,
            "ptmap_gateway_forward_failures_total",
            &format!("peer=\"{owner}\"")
        )
        .unwrap_or(0.0)
            >= 1.0,
        "{text}"
    );

    gw.stop();
    for d in daemons {
        d.stop();
    }
}

#[test]
fn async_jobs_survive_their_owner_dying() {
    let daemons: Vec<Daemon> = (0..3).map(|_| Daemon::boot()).collect();
    let peers: Vec<SocketAddr> = daemons.iter().map(|d| d.addr).collect();
    let gw = Gw::boot(&peers, |_| {});

    // Submit through the gateway and note the owning peer.
    let spec = compile_spec("survivor", "vecsum:20");
    let submit = http(gw.addr, "POST", "/jobs", &[], &spec);
    assert_eq!(submit.status, 202, "{}", submit.body);
    let submit_doc = json(&submit.body);
    let gid = match submit_doc.get("id") {
        Some(Value::UInt(u)) => *u,
        Some(Value::Int(i)) => *i as u64,
        other => panic!("submit body has no id ({other:?}): {}", submit.body),
    };
    let owner = submit
        .header("x-ptmap-peer")
        .expect("submit names the owner")
        .to_string();

    // Kill the owner (drains and releases its port).
    let mut survivors = Vec::new();
    for d in daemons {
        if d.addr.to_string() == owner {
            d.stop();
        } else {
            survivors.push(d);
        }
    }
    assert_eq!(survivors.len(), 2, "exactly one daemon was the owner");

    // Polling the gateway id must never 404: the gateway requeues the
    // job onto a replica and eventually reports it done.
    let t0 = Instant::now();
    let done = loop {
        let poll = http(gw.addr, "GET", &format!("/jobs/{gid}"), &[], "");
        assert_ne!(
            poll.status, 404,
            "job lost after owner death: {}",
            poll.body
        );
        if poll.status == 200 && poll.body.contains("\"state\":\"done\"") {
            break poll;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "job never completed after requeue (last: {} {})",
            poll.status,
            poll.body
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        done.body.contains(&format!("\"id\":{gid}")),
        "poll bodies carry the gateway's id: {}",
        done.body
    );
    assert!(done.body.contains("\"report\""), "{}", done.body);

    let text = gw.handle.metrics_text();
    assert!(
        metric_value(&text, "ptmap_gateway_jobs_requeued_total").unwrap_or(0.0) >= 1.0,
        "the requeue must be visible in metrics:\n{text}"
    );

    let summary = gw.stop();
    assert!(summary.requeued >= 1);
    for d in survivors {
        d.stop();
    }
}

#[test]
fn loadtest_against_a_live_daemon_reports_zero_failures() {
    let daemon = Daemon::boot();
    let report = run_loadtest(&LoadtestConfig {
        target: daemon.addr.to_string(),
        workers: 2,
        requests: 12,
        seed: 7,
        distinct: 3,
        deadline_ms: Some(60_000),
    });
    assert_eq!(report.sent, 12);
    assert_eq!(report.failed(), 0, "errors: {:?}", report.errors);
    let rendered = report.render();
    assert!(rendered.contains("loadtest sent: 12"), "{rendered}");
    assert!(rendered.contains("loadtest failed: 0"), "{rendered}");
    daemon.stop();
}

#[test]
fn gateway_metrics_rollup_covers_the_cluster() {
    let daemons: Vec<Daemon> = (0..2).map(|_| Daemon::boot()).collect();
    let peers: Vec<SocketAddr> = daemons.iter().map(|d| d.addr).collect();
    let gw = Gw::boot(&peers, |_| {});

    // Traffic through the gateway lands on daemons; the rollup view
    // aggregates their counters.
    for i in 0..3 {
        let spec = compile_spec(&format!("roll-{i}"), "vecsum:8");
        assert_eq!(http(gw.addr, "POST", "/compile", &[], &spec).status, 200);
    }
    let text = http(gw.addr, "GET", "/metrics", &[], "").body;
    check_prometheus_text(&text).expect("valid rolled-up metrics");
    for required in [
        "ptmap_gateway_forwards_total",
        "ptmap_gateway_peer_state",
        "ptmap_gateway_peers_available",
        "ptmap_gateway_retries_total",
        "ptmap_cluster_compiles_started_total",
        "ptmap_cluster_peer_up",
    ] {
        assert!(text.contains(required), "missing {required}:\n{text}");
    }
    // The three specs share one request key (the job name is not part
    // of it), so the cluster saw one real compile and two cache hits.
    assert!(
        metric_sum(&text, "ptmap_cluster_compiles_started_total") >= 1.0,
        "cluster compiles rollup must cover the forwarded traffic:\n{text}"
    );
    assert!(
        metric_sum(&text, "ptmap_cluster_cache_hits_total") >= 2.0,
        "cluster cache-hit rollup must cover the repeated key:\n{text}"
    );
    for peer in &peers {
        assert_eq!(
            labelled_value(&text, "ptmap_cluster_peer_up", &format!("peer=\"{peer}\"")),
            Some(1.0),
            "{text}"
        );
    }

    gw.stop();
    for d in daemons {
        d.stop();
    }
}

#[test]
fn stitched_trace_covers_gateway_and_daemon_under_one_id() {
    let daemons: Vec<Daemon> = (0..3).map(|_| Daemon::boot()).collect();
    let peers: Vec<SocketAddr> = daemons.iter().map(|d| d.addr).collect();
    let gw = Gw::boot(&peers, |_| {});

    let spec = compile_spec("stitched", "vecsum:24");
    let reply = http(gw.addr, "POST", "/compile", &[], &spec);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let trace_id = reply
        .header("x-ptmap-trace-id")
        .expect("compile responses carry the trace id")
        .to_string();

    // The raw stitched tree: gateway spans and the daemon's compile
    // tree under one trace id, with the compile root grafted onto the
    // winning forward span.
    let raw = http(
        gw.addr,
        "GET",
        &format!("/jobs/{trace_id}/trace?format=raw"),
        &[],
        "",
    );
    assert_eq!(raw.status, 200, "{}", raw.body);
    let trace: ptmap_trace::Trace = serde_json::from_str(&raw.body).expect("raw trace parses");
    assert_eq!(trace.trace_id, trace_id);
    let winner = trace
        .spans_named(ptmap_trace::FORWARD_SPAN)
        .find(|s| {
            s.attrs
                .iter()
                .any(|(k, v)| k == ptmap_trace::WINNER_ATTR && *v == AttrValue::Bool(true))
        })
        .expect("a winning forward span");
    let compile = trace
        .spans_named("compile")
        .next()
        .expect("daemon compile root grafted in");
    assert_eq!(
        compile.parent,
        Some(winner.id),
        "daemon tree must hang off the winning forward"
    );
    assert!(trace.spans_named("admission").next().is_some());
    assert!(trace.spans_named("ring_lookup").next().is_some());
    let roots = trace.spans.iter().filter(|s| s.parent.is_none()).count();
    assert_eq!(roots, 1, "stitched trace is a single tree");
    for (i, s) in trace.spans.iter().enumerate() {
        assert_eq!(s.id as usize, i, "span ids stay index-aligned");
        if let Some(p) = s.parent {
            assert!((p as usize) < i, "parents precede children");
        }
    }

    // The Chrome rendering of the same trace is balanced and names
    // both tiers' spans.
    let chrome = http(gw.addr, "GET", &format!("/jobs/{trace_id}/trace"), &[], "");
    assert_eq!(chrome.status, 200, "{}", chrome.body);
    let doc = json(&chrome.body);
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    let mut depth = 0i64;
    let mut names = std::collections::BTreeSet::new();
    for ev in events {
        match ev.get("ph").and_then(Value::as_str) {
            Some("B") => {
                depth += 1;
                if let Some(n) = ev.get("name").and_then(Value::as_str) {
                    names.insert(n.to_string());
                }
            }
            Some("E") => {
                depth -= 1;
                assert!(depth >= 0, "E without a matching B");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced B/E events");
    for required in ["gateway", "admission", "forward", "compile"] {
        assert!(
            names.contains(required),
            "missing span {required:?}: {names:?}"
        );
    }

    gw.stop();
    for d in daemons {
        d.stop();
    }
}

#[test]
fn failover_leaves_retry_evidence_in_the_stitched_trace() {
    let daemons: Vec<Daemon> = (0..3).map(|_| Daemon::boot()).collect();
    let peers: Vec<SocketAddr> = daemons.iter().map(|d| d.addr).collect();
    let gw = Gw::boot(&peers, |_| {});

    // Learn which peer owns this key, then refuse all forwards to it.
    let spec = compile_spec("traced-failover", "vecsum:28");
    let first = http(gw.addr, "POST", "/compile", &[], &spec);
    assert_eq!(first.status, 200, "{}", first.body);
    let owner = first.header("x-ptmap-peer").unwrap().to_string();
    let _fault = faultpoint::install(&format!("gateway_forward:refuse@{owner}")).unwrap();

    let reply = http(gw.addr, "POST", "/compile", &[], &spec);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let trace_id = reply.header("x-ptmap-trace-id").unwrap().to_string();

    // The stitched trace must show the refused attempt AND the retry
    // that won — the whole failover story in one tree. Fetching it
    // also exercises the budget-sliced peer fan-out: the probe to the
    // refused owner fails without eating the other peers' budget.
    let raw = http(
        gw.addr,
        "GET",
        &format!("/jobs/{trace_id}/trace?format=raw"),
        &[],
        "",
    );
    assert_eq!(raw.status, 200, "{}", raw.body);
    let trace: ptmap_trace::Trace = serde_json::from_str(&raw.body).expect("raw trace parses");
    let forwards: Vec<_> = trace.spans_named(ptmap_trace::FORWARD_SPAN).collect();
    assert!(
        forwards.len() >= 2,
        "refused attempt plus failover, got {}",
        forwards.len()
    );
    let refused = forwards
        .iter()
        .find(|s| s.attrs.iter().any(|(k, _)| k == "error"))
        .expect("the refused attempt records its error");
    assert!(
        refused
            .attrs
            .iter()
            .any(|(k, v)| k == "attempt" && *v == AttrValue::UInt(0)),
        "{:?}",
        refused.attrs
    );
    let winner = forwards
        .iter()
        .find(|s| {
            s.attrs
                .iter()
                .any(|(k, v)| k == ptmap_trace::WINNER_ATTR && *v == AttrValue::Bool(true))
        })
        .expect("a winning forward span");
    assert!(
        winner
            .attrs
            .iter()
            .any(|(k, v)| k == "attempt" && matches!(v, AttrValue::UInt(n) if *n >= 1)),
        "the winner must have been a retry: {:?}",
        winner.attrs
    );
    assert!(
        trace.spans_named("compile").next().is_some(),
        "the stand-in daemon's compile tree is stitched in"
    );

    gw.stop();
    for d in daemons {
        d.stop();
    }
}

#[test]
fn gateway_flight_recorder_replays_schema_valid_events() {
    let daemon = Daemon::boot();
    let gw = Gw::boot(&[daemon.addr], |_| {});

    let spec = compile_spec("evented", "vecsum:10");
    let reply = http(gw.addr, "POST", "/compile", &[], &spec);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let trace_id = reply.header("x-ptmap-trace-id").unwrap().to_string();

    // Every flight-recorder line is schema-valid JSON; at least one is
    // correlated to the compile's trace id.
    let events = http(gw.addr, "GET", "/debug/events", &[], "");
    assert_eq!(events.status, 200);
    assert!(!events.body.is_empty(), "the compile must have logged");
    let mut correlated = false;
    for line in events.body.lines() {
        let ev = json(line);
        for key in ["ts", "level", "component", "event"] {
            assert!(ev.get(key).is_some(), "event missing {key:?}: {line}");
        }
        assert_eq!(ev.get("component").and_then(Value::as_str), Some("gateway"));
        if ev.get("trace_id").and_then(Value::as_str) == Some(trace_id.as_str()) {
            correlated = true;
        }
    }
    assert!(
        correlated,
        "no event correlated to trace {trace_id}:\n{}",
        events.body
    );

    // `n=` bounds the replay to the most recent lines.
    let one = http(gw.addr, "GET", "/debug/events?n=1", &[], "");
    assert_eq!(one.status, 200);
    assert_eq!(one.body.lines().count(), 1, "{}", one.body);

    gw.stop();
    daemon.stop();
}
