//! End-to-end tests of the `ptmap serve` daemon: coalescing,
//! admission control, drain, and the metrics contract.
//!
//! Most tests boot the server in-process (ephemeral port, shutdown via
//! [`ServerHandle`]); the SIGTERM test spawns the real binary so the
//! signal path and exit code are exercised for real.

use ptmap_governor::faultpoint;
use ptmap_serve::metrics::check_prometheus_text;
use ptmap_serve::{DrainSummary, ServeConfig, Server, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Boots an in-process server on an ephemeral port.
fn boot(
    config: ServeConfig,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<DrainSummary>,
) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        drain_timeout: Duration::from_secs(5),
        ..config
    };
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

/// One parsed HTTP response.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response (the server closes
/// the connection after answering).
fn http(addr: SocketAddr, method: &str, path: &str, headers: &[(&str, &str)], body: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: ptmap\r\n");
    for (name, value) in headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

fn compile_spec(name: &str, kernel: &str) -> String {
    format!("{{\"name\":\"{name}\",\"kernel\":\"{kernel}\",\"arch\":\"S4\"}}")
}

/// Extracts `metric value` (no labels) from a Prometheus document.
fn metric_value(text: &str, metric: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(metric) && l.as_bytes().get(metric.len()) == Some(&b' '))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

/// Extracts a labelled series value, matching on substring of the
/// label set.
fn labelled_value(text: &str, metric: &str, label_part: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(metric) && l.contains(label_part))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

#[test]
fn concurrent_identical_compiles_share_one_flight() {
    // Slow each placement attempt of the job named "coal" so the
    // followers reliably arrive while the leader is still compiling.
    let _fault = faultpoint::install("mapper_place:delay:150@coal").unwrap();
    let (addr, handle, runner) = boot(ServeConfig::default());

    let spec = compile_spec("coal", "vecsum:16");
    let leader = {
        let spec = spec.clone();
        std::thread::spawn(move || http(addr, "POST", "/compile", &[], &spec))
    };
    // Wait until the leader's flight is registered before launching
    // the followers: from that point, identical requests must coalesce.
    let t0 = Instant::now();
    loop {
        let text = http(addr, "GET", "/metrics", &[], "").body;
        if metric_value(&text, "ptmap_inflight_flights") == Some(1.0) {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "leader never started"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let followers: Vec<_> = (0..3)
        .map(|_| {
            let spec = spec.clone();
            std::thread::spawn(move || http(addr, "POST", "/compile", &[], &spec))
        })
        .collect();

    let lead_reply = leader.join().unwrap();
    assert_eq!(lead_reply.status, 200, "{}", lead_reply.body);
    assert!(lead_reply.body.contains("\"report\""));
    for follower in followers {
        let reply = follower.join().unwrap();
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert_eq!(
            reply.header("x-ptmap-coalesced"),
            Some("1"),
            "followers must be marked coalesced"
        );
        assert_eq!(reply.body, lead_reply.body, "all waiters share one outcome");
    }

    let text = http(addr, "GET", "/metrics", &[], "").body;
    assert_eq!(
        metric_value(&text, "ptmap_compiles_started_total"),
        Some(1.0),
        "exactly one underlying compile:\n{text}"
    );
    assert_eq!(
        metric_value(&text, "ptmap_coalesced_requests_total"),
        Some(3.0),
        "N identical concurrent requests coalesce N-1:\n{text}"
    );

    // A later identical request is served from the report cache, not a
    // new flight.
    let cached = http(addr, "POST", "/compile", &[], &spec);
    assert_eq!(cached.status, 200);
    assert!(
        cached.body.contains("\"cache_hit\":true"),
        "{}",
        cached.body
    );

    handle.shutdown();
    let summary = runner.join().unwrap();
    assert_eq!(summary.compiles, 1);
    assert_eq!(summary.coalesced, 3);
    assert!(summary.clean);
}

#[test]
fn quality_header_selects_backend_and_splits_the_cache_key() {
    let (addr, handle, runner) = boot(ServeConfig::default());
    let spec = compile_spec("tier", "vecsum:8");

    // Default tier: the server's base backend, echoed in the header.
    let base = http(addr, "POST", "/compile", &[], &spec);
    assert_eq!(base.status, 200, "{}", base.body);
    assert_eq!(base.header("x-ptmap-quality"), Some("heuristic"));

    // Exact tier: a different request key, so this is NOT served from
    // the heuristic-cached entry above.
    let exact = http(
        addr,
        "POST",
        "/compile",
        &[("X-Ptmap-Quality", "exact")],
        &spec,
    );
    assert_eq!(exact.status, 200, "{}", exact.body);
    assert_eq!(exact.header("x-ptmap-quality"), Some("exact"));
    assert!(
        exact.body.contains("\"cache_hit\":false"),
        "exact tier must not alias the heuristic cache entry: {}",
        exact.body
    );
    assert!(
        exact.body.contains("\"proven_optimal\":true"),
        "a trivial kernel should be proven optimal in-deadline: {}",
        exact.body
    );

    // Repeating the exact-tier request hits the exact-keyed entry.
    let again = http(
        addr,
        "POST",
        "/compile",
        &[("X-Ptmap-Quality", "exact")],
        &spec,
    );
    assert!(again.body.contains("\"cache_hit\":true"), "{}", again.body);

    // Unknown tiers are client errors.
    let bad = http(
        addr,
        "POST",
        "/compile",
        &[("X-Ptmap-Quality", "speedy")],
        &spec,
    );
    assert_eq!(bad.status, 400, "{}", bad.body);

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn expired_deadline_is_rejected_at_admission() {
    let (addr, handle, runner) = boot(ServeConfig::default());

    let reply = http(
        addr,
        "POST",
        "/compile",
        &[("X-Ptmap-Deadline-Ms", "0")],
        &compile_spec("doomed", "gemm:8"),
    );
    assert_eq!(reply.status, 504, "{}", reply.body);
    assert!(
        reply.body.contains("\"error_class\":\"timeout\""),
        "structured timeout error: {}",
        reply.body
    );

    let text = http(addr, "GET", "/metrics", &[], "").body;
    assert_eq!(
        labelled_value(
            &text,
            "ptmap_admission_rejects_total",
            "reason=\"deadline\""
        ),
        Some(1.0),
        "{text}"
    );
    assert_eq!(
        metric_value(&text, "ptmap_compiles_started_total"),
        Some(0.0),
        "the governor check must run before any worker is occupied:\n{text}"
    );

    // A malformed deadline is a client error, not a timeout.
    let reply = http(
        addr,
        "POST",
        "/compile",
        &[("X-Ptmap-Deadline-Ms", "soon")],
        &compile_spec("doomed", "gemm:8"),
    );
    assert_eq!(reply.status, 400);

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn metrics_document_parses_and_covers_the_contract() {
    let (addr, handle, runner) = boot(ServeConfig::default());

    // Generate some traffic first so histograms and request counters
    // have series.
    assert_eq!(
        http(
            addr,
            "POST",
            "/compile",
            &[],
            &compile_spec("m", "vecsum:8")
        )
        .status,
        200
    );
    assert_eq!(http(addr, "GET", "/healthz", &[], "").status, 200);
    assert_eq!(http(addr, "GET", "/nope", &[], "").status, 404);

    let text = http(addr, "GET", "/metrics", &[], "").body;
    check_prometheus_text(&text).expect("valid Prometheus text format");
    for required in [
        "ptmap_http_requests_total",
        "ptmap_http_request_seconds_bucket",
        "ptmap_http_request_seconds_count",
        "ptmap_coalesced_requests_total",
        "ptmap_compiles_started_total",
        "ptmap_queue_depth",
        "ptmap_inflight_compiles",
        "ptmap_workers_alive",
        "ptmap_cache_hits_total",
        "ptmap_stage_seconds_total",
        "ptmap_pipeline_events_total",
    ] {
        assert!(text.contains(required), "missing {required}:\n{text}");
    }
    assert!(
        labelled_value(&text, "ptmap_http_requests_total", "endpoint=\"compile\"").is_some(),
        "{text}"
    );

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn async_jobs_submit_and_poll_to_completion() {
    let (addr, handle, runner) = boot(ServeConfig::default());

    let reply = http(
        addr,
        "POST",
        "/jobs",
        &[],
        &compile_spec("async", "vecsum:12"),
    );
    assert_eq!(reply.status, 202, "{}", reply.body);
    let id: u64 = reply
        .body
        .split("\"id\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.trim().parse().ok())
        .expect("submission returns an id");

    let t0 = Instant::now();
    let done = loop {
        let poll = http(addr, "GET", &format!("/jobs/{id}"), &[], "");
        assert_eq!(poll.status, 200, "{}", poll.body);
        if poll.body.contains("\"state\":\"done\"") {
            break poll;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "job never finished: {}",
            poll.body
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(done.body.contains("\"outcome\""), "{}", done.body);
    assert!(done.body.contains("\"report\""), "{}", done.body);

    assert_eq!(http(addr, "GET", "/jobs/999999", &[], "").status, 404);
    assert_eq!(http(addr, "GET", "/jobs/not-a-number", &[], "").status, 400);

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn compile_trace_round_trips_through_the_store() {
    let (addr, handle, runner) = boot(ServeConfig::default());

    // A fresh compile mints a trace id and retains its trace.
    let reply = http(
        addr,
        "POST",
        "/compile",
        &[],
        &compile_spec("traced", "vecsum:16"),
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    let trace_id = reply
        .header("x-ptmap-trace-id")
        .expect("compile responses carry a trace id")
        .to_string();
    assert!(
        reply.body.contains(&format!("\"trace_id\":\"{trace_id}\"")),
        "outcome and header agree: {}",
        reply.body
    );

    let fetched = http(addr, "GET", &format!("/jobs/{trace_id}/trace"), &[], "");
    assert_eq!(fetched.status, 200, "{}", fetched.body);
    assert_eq!(fetched.header("x-ptmap-trace-id"), Some(trace_id.as_str()));
    for span in [
        "traceEvents",
        "compile",
        "explore",
        "map",
        "ii_attempt",
        "restarts",
    ] {
        assert!(
            fetched.body.contains(span),
            "trace must contain {span:?}: {}",
            fetched.body
        );
    }

    // A client-supplied trace id is adopted, echoed, and force-kept.
    let custom = http(
        addr,
        "POST",
        "/compile",
        &[("X-Ptmap-Trace-Id", "client-chose-this")],
        &compile_spec("traced2", "vecsum:24"),
    );
    assert_eq!(custom.status, 200, "{}", custom.body);
    assert_eq!(custom.header("x-ptmap-trace-id"), Some("client-chose-this"));
    let fetched = http(addr, "GET", "/jobs/client-chose-this/trace", &[], "");
    assert_eq!(fetched.status, 200, "{}", fetched.body);

    // Unknown ids 404.
    assert_eq!(
        http(addr, "GET", "/jobs/deadbeefdeadbeef/trace", &[], "").status,
        404
    );

    let text = http(addr, "GET", "/metrics", &[], "").body;
    check_prometheus_text(&text).expect("valid with trace series");
    assert!(
        metric_value(&text, "ptmap_trace_store_entries") >= Some(2.0),
        "{text}"
    );

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn sampling_drops_traces_but_client_ids_are_kept() {
    let (addr, handle, runner) = boot(ServeConfig {
        trace_sample: 0.0,
        ..ServeConfig::default()
    });

    // Sampled out: the id is still issued (correlation), the body is
    // not retained.
    let reply = http(
        addr,
        "POST",
        "/compile",
        &[],
        &compile_spec("dropped", "vecsum:8"),
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    let trace_id = reply
        .header("x-ptmap-trace-id")
        .expect("id issued even when sampled out")
        .to_string();
    assert_eq!(
        http(addr, "GET", &format!("/jobs/{trace_id}/trace"), &[], "").status,
        404,
        "sampled-out trace is not retained"
    );

    // A client-supplied id bypasses sampling entirely.
    let forced = http(
        addr,
        "POST",
        "/compile",
        &[("X-Ptmap-Trace-Id", "keep-me")],
        &compile_spec("kept", "vecsum:12"),
    );
    assert_eq!(forced.status, 200, "{}", forced.body);
    let fetched = http(addr, "GET", "/jobs/keep-me/trace", &[], "");
    assert_eq!(fetched.status, 200, "{}", fetched.body);
    assert!(fetched.body.contains("traceEvents"));

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn async_job_trace_is_fetchable_by_job_id() {
    let (addr, handle, runner) = boot(ServeConfig::default());

    let reply = http(
        addr,
        "POST",
        "/jobs",
        &[],
        &compile_spec("async-traced", "vecsum:20"),
    );
    assert_eq!(reply.status, 202, "{}", reply.body);
    let id: u64 = reply
        .body
        .split("\"id\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.trim().parse().ok())
        .expect("submission returns an id");

    let t0 = Instant::now();
    loop {
        let poll = http(addr, "GET", &format!("/jobs/{id}"), &[], "");
        if poll.body.contains("\"state\":\"done\"") {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "job never finished: {}",
            poll.body
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let fetched = http(addr, "GET", &format!("/jobs/{id}/trace"), &[], "");
    assert_eq!(fetched.status, 200, "{}", fetched.body);
    assert!(fetched.body.contains("traceEvents"), "{}", fetched.body);
    assert!(fetched.body.contains("ii_attempt"), "{}", fetched.body);

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn async_submissions_validate_headers_like_sync_compiles() {
    let (addr, handle, runner) = boot(ServeConfig::default());
    let spec = compile_spec("async-hdr", "vecsum:8");

    // A malformed deadline on /jobs is a structured client error, not
    // silently ignored (it used to be dropped on the async path).
    let bad_deadline = http(
        addr,
        "POST",
        "/jobs",
        &[("X-Ptmap-Deadline-Ms", "soon")],
        &spec,
    );
    assert_eq!(bad_deadline.status, 400, "{}", bad_deadline.body);
    assert!(
        bad_deadline.body.contains("\"reason\":\"bad-deadline\""),
        "{}",
        bad_deadline.body
    );

    let bad_quality = http(
        addr,
        "POST",
        "/jobs",
        &[("X-Ptmap-Quality", "speedy")],
        &spec,
    );
    assert_eq!(bad_quality.status, 400, "{}", bad_quality.body);
    assert!(
        bad_quality.body.contains("\"reason\":\"bad-quality\""),
        "{}",
        bad_quality.body
    );

    // Well-formed values are still accepted.
    let ok = http(
        addr,
        "POST",
        "/jobs",
        &[
            ("X-Ptmap-Deadline-Ms", "60000"),
            ("X-Ptmap-Quality", "heuristic"),
        ],
        &spec,
    );
    assert_eq!(ok.status, 202, "{}", ok.body);

    // The sync path's malformed-deadline rejection carries the same
    // structured reason.
    let sync_bad = http(
        addr,
        "POST",
        "/compile",
        &[("X-Ptmap-Deadline-Ms", "soon")],
        &spec,
    );
    assert_eq!(sync_bad.status, 400, "{}", sync_bad.body);
    assert!(
        sync_bad.body.contains("\"reason\":\"bad-deadline\""),
        "{}",
        sync_bad.body
    );

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn queue_full_rejections_carry_retry_after() {
    // One worker and a one-slot queue: the second and third async
    // submissions of slow compiles overflow the queue.
    let _fault = faultpoint::install("mapper_place:delay:300@slow").unwrap();
    let (addr, handle, runner) = boot(ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    });

    let mut saw_503 = None;
    for i in 0..6 {
        let spec = compile_spec("slow", &format!("vecsum:{}", 8 + 4 * i));
        let reply = http(addr, "POST", "/jobs", &[], &spec);
        if reply.status == 503 {
            saw_503 = Some(reply);
            break;
        }
        assert_eq!(reply.status, 202, "{}", reply.body);
    }
    let reject = saw_503.expect("a one-slot queue must overflow within six submissions");
    assert!(
        reject.body.contains("\"reason\":\"queue-full\""),
        "{}",
        reject.body
    );
    let retry_after: u64 = reject
        .header("retry-after")
        .expect("busy rejections must carry Retry-After")
        .parse()
        .expect("Retry-After is seconds");
    assert!(retry_after >= 1);

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn bad_requests_and_unknown_routes() {
    let (addr, handle, runner) = boot(ServeConfig::default());
    assert_eq!(http(addr, "POST", "/compile", &[], "{ nope").status, 400);
    assert_eq!(
        http(addr, "POST", "/compile", &[], "{\"kernel\":\"gemm:8\"}").status,
        400,
        "missing arch is a spec error"
    );
    assert_eq!(
        http(
            addr,
            "POST",
            "/compile",
            &[],
            "{\"kernel\":\"nope:1\",\"arch\":\"S4\"}"
        )
        .status,
        400,
        "unresolvable kernel"
    );
    assert_eq!(http(addr, "GET", "/compile", &[], "").status, 405);
    assert_eq!(http(addr, "DELETE", "/jobs", &[], "").status, 405);
    assert_eq!(http(addr, "GET", "/", &[], "").status, 404);
    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn sigterm_drains_and_exits_zero() {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_ptmap"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn daemon");

    // The boot line carries the ephemeral port.
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
    let mut boot_line = String::new();
    stdout.read_line(&mut boot_line).expect("boot line");
    let addr: SocketAddr = boot_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected boot line {boot_line:?}"))
        .parse()
        .expect("bound address");

    // Prove it serves, then ask it to drain.
    let reply = http(
        addr,
        "POST",
        "/compile",
        &[],
        &compile_spec("term", "vecsum:8"),
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(http(addr, "GET", "/healthz", &[], "").status, 200);

    let term = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());

    // Exit must happen within the drain window (nothing is in flight).
    let t0 = Instant::now();
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "daemon did not exit after SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(0), "graceful drain exits 0");

    let mut err = String::new();
    child
        .stderr
        .take()
        .expect("stderr")
        .read_to_string(&mut err)
        .expect("read stderr");
    assert!(err.contains("drained"), "drain summary on stderr: {err}");
    assert!(
        err.contains("--- final metrics ---"),
        "metrics flushed on drain: {err}"
    );
    assert!(
        err.contains("ptmap_http_requests_total"),
        "flushed metrics include request counters: {err}"
    );
}

#[test]
fn draining_server_refuses_new_work() {
    let (addr, handle, runner) = boot(ServeConfig::default());
    // Drain with nothing in flight: the run loop exits quickly; the
    // summary reflects the lifetime counters.
    assert_eq!(http(addr, "GET", "/healthz", &[], "").status, 200);
    handle.shutdown();
    let summary = runner.join().unwrap();
    assert!(summary.clean);
    assert_eq!(summary.compiles, 0);
    assert_eq!(summary.requests, 1);
    // The port is released after drain.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // Accepting a connection after close can race on some
            // platforms; a refused write settles it.
            true
        }
    );
}
