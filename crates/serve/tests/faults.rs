//! Fault-injection integration tests of the `ptmap batch` CLI: the
//! `PTMAP_FAULT` matrix (one representative behavior per site/mode)
//! plus the end-to-end degraded-batch scenario — one hung job, one
//! panicking job, one corrupt disk-cache entry in a single run.

use ptmap_pipeline::JobOutcome;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn ptmap() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ptmap"))
}

/// Fresh scratch directory named after the test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptmap-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_manifest(dir: &Path, text: &str) -> PathBuf {
    let path = dir.join("jobs.json");
    std::fs::write(&path, text).unwrap();
    path
}

/// Runs `ptmap batch` on a manifest with optional PTMAP_FAULT and extra
/// flags, returning the raw output.
fn run_batch_cli(manifest: &Path, fault: &str, extra: &[&str]) -> Output {
    let mut cmd = ptmap();
    cmd.arg("batch")
        .arg(format!("--manifest={}", manifest.display()))
        .args(extra);
    if fault.is_empty() {
        cmd.env_remove("PTMAP_FAULT");
    } else {
        cmd.env("PTMAP_FAULT", fault);
    }
    cmd.output().unwrap()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

const TINY_MANIFEST: &str = r#"{"jobs": [{"kernel": "vecsum:64", "arch": "S4"}]}"#;

#[test]
fn cache_read_error_recompiles_instead_of_hitting() {
    let dir = scratch("cache-read-error");
    let manifest = write_manifest(&dir, TINY_MANIFEST);
    let cache = format!("--cache-dir={}", dir.join("cache").display());

    let warmup = run_batch_cli(&manifest, "", &[&cache]);
    assert!(warmup.status.success(), "{}", stderr(&warmup));
    assert!(stdout(&warmup).contains("0 cache hits, 1 misses"));

    // With reads faulted, the warm entry is unreachable; the job still
    // succeeds by recompiling.
    let faulted = run_batch_cli(&manifest, "cache_read:error", &[&cache]);
    assert!(faulted.status.success(), "{}", stderr(&faulted));
    assert!(
        stdout(&faulted).contains("0 cache hits, 1 misses"),
        "{}",
        stdout(&faulted)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_write_error_leaves_disk_cold() {
    let dir = scratch("cache-write-error");
    let manifest = write_manifest(&dir, TINY_MANIFEST);
    let cache_dir = dir.join("cache");
    let cache = format!("--cache-dir={}", cache_dir.display());

    let out = run_batch_cli(&manifest, "cache_write:error", &[&cache]);
    assert!(out.status.success(), "{}", stderr(&out));
    let written = std::fs::read_dir(&cache_dir)
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(written, 0, "faulted writes must not publish entries");

    // Next (fault-free) run therefore misses and recompiles.
    let next = run_batch_cli(&manifest, "", &[&cache]);
    assert!(next.status.success());
    assert!(
        stdout(&next).contains("0 cache hits, 1 misses"),
        "{}",
        stdout(&next)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_spawn_panic_degrades_to_serial_batch() {
    let dir = scratch("worker-spawn-panic");
    let manifest = write_manifest(
        &dir,
        r#"{"jobs": [
            {"kernel": "vecsum:64", "arch": "S4"},
            {"kernel": "vecsum:128", "arch": "S4"}
        ]}"#,
    );
    let out = run_batch_cli(&manifest, "worker_spawn:panic", &["--jobs", "3"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("2 jobs"), "{}", stdout(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn predictor_load_error_degrades_to_analytical() {
    let dir = scratch("predictor-load-error");
    let manifest = write_manifest(
        &dir,
        r#"{"jobs": [{"kernel": "vecsum:64", "arch": "S4", "predictor": "gnn:model.json"}]}"#,
    );
    let out = run_batch_cli(&manifest, "predictor_load:error", &[]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("[degraded: predictor=analytical"),
        "degradation must be visible per job: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mapper_place_error_fails_job_with_fault_class() {
    let dir = scratch("mapper-place-error");
    let manifest = write_manifest(&dir, TINY_MANIFEST);
    let out = run_batch_cli(&manifest, "mapper_place:error", &[]);
    assert!(!out.status.success(), "faulted job must fail the batch");
    let err = stderr(&out);
    assert!(err.contains("1 of 1 jobs failed"), "{err}");
    assert!(err.contains("class=fault"), "{err}");
    assert!(err.contains("injected fault at mapper_place"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_fault_spec_warns_and_is_ignored() {
    let dir = scratch("bad-spec");
    let manifest = write_manifest(&dir, TINY_MANIFEST);
    let out = run_batch_cli(&manifest, "mapper_place:explode", &[]);
    assert!(out.status.success(), "bad spec must not break the batch");
    assert!(
        stderr(&out).contains("ignoring PTMAP_FAULT"),
        "{}",
        stderr(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance scenario: a four-job batch where one job hangs (delay
/// fault + `--job-timeout`), one panics, and one clean job's disk-cache
/// entry is corrupt. The batch must complete with structured errors for
/// the two faulted jobs, quarantine-and-recompute the corrupt entry,
/// leave the clean jobs' deterministic outcomes byte-identical to a
/// fault-free run, and exit non-zero.
#[test]
fn degraded_batch_isolates_faults_and_stays_deterministic() {
    let dir = scratch("acceptance");
    let manifest = write_manifest(
        &dir,
        r#"{"jobs": [
            {"name": "hung", "kernel": "gemm:16", "arch": "S4"},
            {"name": "boom", "kernel": "gemm:16", "arch": "R4"},
            {"name": "clean-a", "kernel": "vecsum:64", "arch": "S4"},
            {"name": "clean-b", "kernel": "vecsum:128", "arch": "R4"}
        ]}"#,
    );

    // Fault-free baseline (separate cache so nothing leaks forward).
    let base_out = dir.join("baseline.json");
    let baseline = run_batch_cli(
        &manifest,
        "",
        &[
            &format!("--cache-dir={}", dir.join("cache-base").display()),
            &format!("--out={}", base_out.display()),
        ],
    );
    assert!(baseline.status.success(), "{}", stderr(&baseline));

    // Seed the faulty run's cache with clean-a only, then corrupt that
    // single entry on disk.
    let faulty_cache = dir.join("cache-faulty");
    let seed_manifest = write_manifest_named(
        &dir,
        "seed.json",
        r#"{"jobs": [{"name": "clean-a", "kernel": "vecsum:64", "arch": "S4"}]}"#,
    );
    let seed = run_batch_cli(
        &seed_manifest,
        "",
        &[&format!("--cache-dir={}", faulty_cache.display())],
    );
    assert!(seed.status.success(), "{}", stderr(&seed));
    let entries: Vec<PathBuf> = std::fs::read_dir(&faulty_cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1, "seed run must cache exactly one entry");
    let bytes = std::fs::read(&entries[0]).unwrap();
    std::fs::write(&entries[0], &bytes[..bytes.len() / 2]).unwrap();

    // The faulted run: `hung` sleeps 2.5s inside the mapper against a
    // 1s per-attempt timeout; `boom` panics at the same site.
    let fault_out = dir.join("faulty.json");
    let metrics_out = dir.join("metrics.json");
    let faulted = run_batch_cli(
        &manifest,
        "mapper_place:delay:2500@hung,mapper_place:panic@boom",
        &[
            &format!("--cache-dir={}", faulty_cache.display()),
            &format!("--out={}", fault_out.display()),
            &format!("--metrics={}", metrics_out.display()),
            "--job-timeout",
            "1",
            "--max-retries",
            "1",
        ],
    );
    assert!(
        !faulted.status.success(),
        "failed jobs must fail the batch: {}",
        stdout(&faulted)
    );
    let err = stderr(&faulted);
    assert!(err.contains("2 of 4 jobs failed"), "{err}");
    assert!(err.contains("class=timeout"), "{err}");
    assert!(err.contains("class=panic"), "{err}");
    assert!(
        err.contains("quarantined corrupt cache entry"),
        "corruption must be reported: {err}"
    );
    assert!(
        stdout(&faulted).contains("1 quarantined"),
        "{}",
        stdout(&faulted)
    );

    // Structured per-job outcomes: the two faulted jobs carry errors,
    // the clean jobs' deterministic parts match the fault-free run
    // exactly (the corrupt entry was recomputed, not served).
    let parse = |p: &Path| -> Vec<JobOutcome> {
        serde_json::from_str(&std::fs::read_to_string(p).unwrap()).unwrap()
    };
    let base = parse(&base_out);
    let fault = parse(&fault_out);
    assert_eq!(base.len(), 4);
    assert_eq!(fault.len(), 4);
    for (b, f) in base.iter().zip(&fault) {
        assert_eq!(b.name, f.name, "manifest order is preserved");
        match f.name.as_str() {
            "hung" => {
                assert!(f.report.is_none());
                assert_eq!(f.error_class.as_deref(), Some("timeout"));
                assert_eq!(f.retries, 1);
            }
            "boom" => {
                assert!(f.report.is_none());
                assert_eq!(f.error_class.as_deref(), Some("panic"));
                assert!(
                    f.error.as_deref().unwrap().contains("injected panic"),
                    "{:?}",
                    f.error
                );
            }
            _ => {
                // Both runs compile the clean jobs cold (the corrupt
                // entry reads as a miss), so even cache_hit must agree.
                let b = b.deterministic();
                let f = f.deterministic();
                assert_eq!(
                    serde_json::to_string(&b).unwrap(),
                    serde_json::to_string(&f).unwrap(),
                    "clean job {} must be byte-identical to the fault-free run",
                    b.name
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn write_manifest_named(dir: &Path, name: &str, text: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, text).unwrap();
    path
}
