//! A deliberately small HTTP/1.1 implementation.
//!
//! The daemon serves exactly one request per connection
//! (`Connection: close`), which keeps disconnect detection trivial —
//! once the request is read, *any* further read returning EOF means the
//! client went away — and sidesteps pipelining entirely. Requests are
//! parsed with hard limits (request line, header count, body size) so a
//! misbehaving client costs a bounded amount of memory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most accepted header lines.
const MAX_HEADERS: usize = 100;
/// Largest accepted request body, in bytes.
const MAX_BODY: usize = 4 * 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or framing.
    BadRequest(String),
    /// A size limit was exceeded (maps to 413).
    TooLarge(String),
    /// The socket failed or closed mid-request.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path component as sent (query strings are not used by this API
    /// and are kept attached).
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line with a length cap.
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let mut limited = reader.by_ref().take((MAX_LINE + 1) as u64);
    limited
        .read_until(b'\n', &mut line)
        .map_err(HttpError::Io)?;
    if line.len() > MAX_LINE {
        return Err(HttpError::TooLarge("header line".into()));
    }
    while line.last().is_some_and(|b| *b == b'\n' || *b == b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::BadRequest("non-UTF-8 header".into()))
}

/// Reads and parses one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader)?;
    if request_line.is_empty() {
        return Err(HttpError::BadRequest("empty request line".into()));
    }
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(HttpError::BadRequest(format!("bad line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("bad version {version}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("too many headers".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("bad header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge("body".into()));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// One response, ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (Content-Type/Length and Connection are emitted
    /// automatically).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Content type of the body.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
        }
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.headers.push((name.to_string(), value));
        self
    }
}

/// The canonical reason phrase for the status codes this API uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serializes a response onto a stream (one request per connection, so
/// `Connection: close` is always sent).
pub fn write_response(stream: &mut impl Write, resp: &Response) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status));
    head.push_str(&format!("Content-Type: {}\r\n", resp.content_type));
    head.push_str(&format!("Content-Length: {}\r\n", resp.body.len()));
    for (name, value) in &resp.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips raw request bytes through a real socket pair.
    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Keep the socket open until the parser is done.
            s.shutdown(std::net::Shutdown::Write).unwrap();
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        drop(stream);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            b"POST /compile HTTP/1.1\r\nHost: x\r\nX-Ptmap-Deadline-Ms: 250\r\n\
              Content-Length: 4\r\n\r\n{\"a\"",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/compile");
        assert_eq!(req.header("x-ptmap-deadline-ms"), Some("250"));
        assert_eq!(req.header("X-PTMAP-DEADLINE-MS"), Some("250"));
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(
            parse(b"NONSENSE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET / SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: grande\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(raw.as_bytes()), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn truncated_body_is_io_error() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn response_serializes() {
        let resp = Response::json(200, "{\"ok\":true}".into())
            .with_header("X-Ptmap-Coalesced", "1".into());
        let mut out = Vec::new();
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("X-Ptmap-Coalesced: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn reasons_cover_api_statuses() {
        for status in [200, 202, 400, 404, 405, 413, 500, 502, 503, 504] {
            assert_ne!(reason(status), "Unknown", "status {status}");
        }
    }
}
