//! Consistent-hash sharding and per-peer circuit breaking.
//!
//! The gateway routes every compile by the pipeline *request key* (the
//! same content-addressed identity the daemons coalesce and cache on),
//! so repeated requests for one kernel land on the same backend and
//! its warm cache survives the gateway restarting or the cluster
//! changing size. [`HashRing`] implements classic consistent hashing
//! with virtual nodes: each peer owns [`VNODES`] pseudo-random points
//! on a `u64` ring, a key is owned by the first point clockwise from
//! its hash, and [`HashRing::replicas`] returns *all* peers in
//! clockwise order — the failover sequence a retry walks when the
//! owner is down. Adding or removing one peer therefore moves only the
//! arcs adjacent to that peer's points (~K/N of the keys), never keys
//! between two surviving peers.
//!
//! [`Breaker`] is the companion health gate: a tiny three-state
//! circuit breaker (closed → open after a run of failures, open →
//! half-open after a cooldown, half-open → closed on the next success)
//! fed by both the gateway's health prober and forwarding outcomes.
//! Ring membership itself never changes when a breaker opens — the
//! peer is only *skipped* during replica selection — so its keys come
//! straight back to it (cache intact) when it recovers.

use std::time::{Duration, Instant};

/// Virtual nodes per peer. 64 keeps the per-peer share within a few
/// percent of fair for small clusters while the ring stays tiny
/// (N × 64 points).
pub const VNODES: usize = 64;

/// FNV-1a over bytes, finalized with a splitmix64 round so close
/// inputs (`peer#1`, `peer#2`, ...) land far apart on the ring.
pub(crate) fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring over a fixed peer list.
///
/// Construction sorts points by `(hash, peer)` — the peer name breaks
/// the (astronomically unlikely) hash tie — so the mapping is a pure
/// function of the peer *set*, independent of insertion order.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Peer names (addresses), in the order given at construction.
    peers: Vec<String>,
    /// `(point, peer index)`, sorted by point.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds a ring over `peers` (deduplicated; empty input yields an
    /// empty ring that owns nothing).
    pub fn new<S: AsRef<str>>(peers: &[S]) -> HashRing {
        let mut names: Vec<String> = peers.iter().map(|p| p.as_ref().to_string()).collect();
        names.sort();
        names.dedup();
        let mut points = Vec::with_capacity(names.len() * VNODES);
        for (idx, name) in names.iter().enumerate() {
            for v in 0..VNODES {
                points.push((hash64(format!("{name}#{v}").as_bytes()), idx));
            }
        }
        points.sort_by(|a, b| (a.0, &names[a.1]).cmp(&(b.0, &names[b.1])));
        HashRing {
            peers: names,
            points,
        }
    }

    /// The peer names the ring was built over (sorted, deduplicated).
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// Number of distinct peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when the ring has no peers.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// The owning peer of `key`, by index into [`HashRing::peers`].
    pub fn owner(&self, key: &str) -> Option<usize> {
        self.replicas(key).into_iter().next()
    }

    /// All peers in clockwise ring order starting at `key`'s owner:
    /// the failover sequence for this key. Every distinct peer appears
    /// exactly once.
    pub fn replicas(&self, key: &str) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let h = hash64(key.as_bytes());
        // First point at or after the key's hash (wrapping).
        let start = self.points.partition_point(|(p, _)| *p < h) % self.points.len();
        let mut seen = vec![false; self.peers.len()];
        let mut order = Vec::with_capacity(self.peers.len());
        for i in 0..self.points.len() {
            let (_, peer) = self.points[(start + i) % self.points.len()];
            if !seen[peer] {
                seen[peer] = true;
                order.push(peer);
                if order.len() == self.peers.len() {
                    break;
                }
            }
        }
        order
    }
}

/// Circuit-breaker states, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Ejected: requests are routed around the peer until the cooldown
    /// passes.
    Open,
    /// Probation after the cooldown: the next success closes the
    /// breaker, the next failure re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// The state's wire name (metrics label, `/cluster` field).
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// A three-state circuit breaker for one peer.
///
/// Not internally synchronized — the gateway wraps each breaker in a
/// mutex alongside the rest of its per-peer state.
#[derive(Debug, Clone)]
pub struct Breaker {
    state: BreakerState,
    /// Consecutive failures while closed.
    failures: u32,
    /// When an open breaker may move to half-open.
    retry_at: Option<Instant>,
    /// Failures (while closed) that open the breaker.
    threshold: u32,
    /// How long an open breaker waits before probation.
    cooldown: Duration,
}

impl Breaker {
    /// A closed breaker opening after `threshold` consecutive failures
    /// and re-probing after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            failures: 0,
            retry_at: None,
            threshold: threshold.max(1),
            cooldown,
        }
    }

    /// The current state, advancing open → half-open when the cooldown
    /// has passed.
    pub fn state(&mut self, now: Instant) -> BreakerState {
        if self.state == BreakerState::Open && self.retry_at.is_some_and(|at| now >= at) {
            self.state = BreakerState::HalfOpen;
            self.retry_at = None;
        }
        self.state
    }

    /// Whether a request may be sent to the peer right now (closed, or
    /// half-open probation).
    pub fn admits(&mut self, now: Instant) -> bool {
        self.state(now) != BreakerState::Open
    }

    /// Records a success. Returns the transition `(from, to)` if one
    /// happened (half-open → closed).
    pub fn record_success(&mut self, now: Instant) -> Option<(BreakerState, BreakerState)> {
        let from = self.state(now);
        self.failures = 0;
        match from {
            BreakerState::Closed => None,
            BreakerState::HalfOpen | BreakerState::Open => {
                // A success from open can only come from a request
                // admitted before the breaker tripped; treat it as
                // recovery either way.
                self.state = BreakerState::Closed;
                self.retry_at = None;
                Some((from, BreakerState::Closed))
            }
        }
    }

    /// Records a failure. Returns the transition `(from, to)` if one
    /// happened (closed → open at the threshold, half-open → open).
    pub fn record_failure(&mut self, now: Instant) -> Option<(BreakerState, BreakerState)> {
        let from = self.state(now);
        match from {
            BreakerState::Closed => {
                self.failures += 1;
                if self.failures >= self.threshold {
                    self.state = BreakerState::Open;
                    self.retry_at = Some(now + self.cooldown);
                    Some((from, BreakerState::Open))
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.retry_at = Some(now + self.cooldown);
                Some((from, BreakerState::Open))
            }
            BreakerState::Open => None,
        }
    }

    /// Consecutive failures observed while closed.
    pub fn consecutive_failures(&self) -> u32 {
        self.failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("sha256:deadbeef{i:04}")).collect()
    }

    #[test]
    fn ring_is_insertion_order_independent() {
        let a = HashRing::new(&["x:1", "y:2", "z:3"]);
        let b = HashRing::new(&["z:3", "x:1", "y:2"]);
        for key in keys(200) {
            assert_eq!(
                a.peers()[a.owner(&key).unwrap()],
                b.peers()[b.owner(&key).unwrap()],
                "owner of {key} differs across insertion orders"
            );
        }
    }

    #[test]
    fn ring_balances_within_reason() {
        let peers = ["a:1", "b:2", "c:3", "d:4"];
        let ring = HashRing::new(&peers);
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        let n = 4000;
        for key in keys(n) {
            *counts.entry(ring.owner(&key).unwrap()).or_default() += 1;
        }
        let fair = n / peers.len();
        for (peer, count) in counts {
            assert!(
                count > fair / 3 && count < fair * 3,
                "peer {peer} owns {count} of {n} keys (fair {fair})"
            );
        }
    }

    #[test]
    fn replicas_cover_all_peers_distinctly_starting_at_owner() {
        let ring = HashRing::new(&["a:1", "b:2", "c:3"]);
        for key in keys(50) {
            let reps = ring.replicas(&key);
            assert_eq!(reps.len(), 3);
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct");
            assert_eq!(reps[0], ring.owner(&key).unwrap());
        }
    }

    #[test]
    fn single_join_moves_only_keys_to_the_new_peer() {
        let before = HashRing::new(&["a:1", "b:2", "c:3"]);
        let after = HashRing::new(&["a:1", "b:2", "c:3", "d:4"]);
        let mut moved = 0usize;
        let n = 2000;
        for key in keys(n) {
            let old = before.peers()[before.owner(&key).unwrap()].clone();
            let new = after.peers()[after.owner(&key).unwrap()].clone();
            if old != new {
                moved += 1;
                assert_eq!(new, "d:4", "{key} moved between surviving peers");
            }
        }
        // Expected share is n/4; allow generous variance.
        assert!(
            moved > n / 16 && moved < n / 2,
            "join moved {moved} of {n} keys"
        );
    }

    #[test]
    fn empty_and_single_peer_rings() {
        let empty = HashRing::new::<&str>(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.owner("k"), None);
        assert!(empty.replicas("k").is_empty());

        let one = HashRing::new(&["only:1"]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.owner("k"), Some(0));
        assert_eq!(one.replicas("k"), vec![0]);

        let duped = HashRing::new(&["only:1", "only:1"]);
        assert_eq!(duped.len(), 1, "duplicates collapse");
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let t0 = Instant::now();
        let mut b = Breaker::new(3, Duration::from_millis(100));
        assert_eq!(b.state(t0), BreakerState::Closed);
        assert!(b.admits(t0));

        assert_eq!(b.record_failure(t0), None);
        assert_eq!(b.record_failure(t0), None);
        assert_eq!(b.consecutive_failures(), 2);
        assert_eq!(
            b.record_failure(t0),
            Some((BreakerState::Closed, BreakerState::Open)),
            "third consecutive failure trips the breaker"
        );
        assert!(!b.admits(t0), "open breakers admit nothing");
        assert_eq!(b.record_failure(t0), None, "already open: no transition");

        // Cooldown passes: half-open probation admits one trial.
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(b.state(t1), BreakerState::HalfOpen);
        assert!(b.admits(t1));

        assert_eq!(
            b.record_success(t1),
            Some((BreakerState::HalfOpen, BreakerState::Closed))
        );
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn halfopen_failure_reopens() {
        let t0 = Instant::now();
        let mut b = Breaker::new(1, Duration::from_millis(50));
        assert_eq!(
            b.record_failure(t0),
            Some((BreakerState::Closed, BreakerState::Open))
        );
        let t1 = t0 + Duration::from_millis(60);
        assert_eq!(b.state(t1), BreakerState::HalfOpen);
        assert_eq!(
            b.record_failure(t1),
            Some((BreakerState::HalfOpen, BreakerState::Open)),
            "a failed probation re-opens"
        );
        // And the next cooldown re-probes again.
        let t2 = t1 + Duration::from_millis(60);
        assert_eq!(b.state(t2), BreakerState::HalfOpen);
        assert_eq!(
            b.record_success(t2),
            Some((BreakerState::HalfOpen, BreakerState::Closed))
        );
    }

    #[test]
    fn success_while_closed_resets_failure_run() {
        let t0 = Instant::now();
        let mut b = Breaker::new(3, Duration::from_millis(50));
        b.record_failure(t0);
        b.record_failure(t0);
        assert_eq!(b.record_success(t0), None);
        assert_eq!(b.consecutive_failures(), 0);
        b.record_failure(t0);
        b.record_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Closed, "run was reset");
    }
}
