//! In-flight request coalescing.
//!
//! Mapping attempts are expensive enough that duplicate work must be
//! shared: when N requests for the same
//! [`request_key`](ptmap_pipeline::request_key) are in flight at once,
//! exactly one — the *leader* — runs the compile; the other N−1
//! *followers* park on the flight and wake with the leader's outcome.
//! (Sequential duplicates are already covered by the report cache; the
//! flight table covers the window while the first compile is still
//! running.)
//!
//! Every flight owns a [`Budget`] scope. Followers that give up
//! (client disconnect, own deadline) detach from the flight; when the
//! last waiter detaches, the flight's budget is cancelled so an
//! audience-less compile stops at its next cooperative check instead
//! of burning a worker.

use crate::lock_unpoisoned;
use ptmap_governor::Budget;
use ptmap_pipeline::JobOutcome;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One in-flight compile, shared by its leader and any followers.
#[derive(Debug)]
pub struct Flight {
    /// The budget the leader's compile runs under. Cancelled when the
    /// last waiter detaches.
    pub budget: Budget,
    /// Waiters still interested in the outcome (leader included).
    waiters: AtomicUsize,
    /// The published outcome (`None` while the compile runs).
    result: Mutex<Option<JobOutcome>>,
    cv: Condvar,
}

impl Flight {
    /// Blocks until the outcome is published or `deadline` passes.
    pub fn wait(&self, deadline: Option<Instant>) -> Option<JobOutcome> {
        let mut guard = lock_unpoisoned(&self.result);
        loop {
            if let Some(outcome) = guard.as_ref() {
                return Some(outcome.clone());
            }
            match deadline {
                None => {
                    guard = self
                        .cv
                        .wait(guard)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    guard = self
                        .cv
                        .wait_timeout(guard, d - now)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .0;
                }
            }
        }
    }

    /// Waiters currently attached.
    pub fn waiters(&self) -> usize {
        self.waiters.load(Ordering::Acquire)
    }
}

/// Joining a flight either makes the caller responsible for the
/// compile (leader) or a passenger on someone else's (follower).
pub enum Join {
    /// This caller created the flight and must run the compile, then
    /// [`Coalescer::complete`] it.
    Leader(Arc<Flight>),
    /// Another request is already compiling this key; wait on the
    /// flight (and [`Coalescer::detach`] on give-up).
    Follower(Arc<Flight>),
}

/// The flight table: request key → in-flight compile.
#[derive(Debug, Default)]
pub struct Coalescer {
    flights: Mutex<HashMap<String, Arc<Flight>>>,
    coalesced: AtomicU64,
}

impl Coalescer {
    /// An empty flight table.
    pub fn new() -> Coalescer {
        Coalescer::default()
    }

    /// Joins the flight for `key`, creating it (with a budget from
    /// `budget`) if this is the first in-flight request for the key.
    pub fn join(&self, key: &str, budget: impl FnOnce() -> Budget) -> Join {
        let mut flights = lock_unpoisoned(&self.flights);
        if let Some(flight) = flights.get(key) {
            flight.waiters.fetch_add(1, Ordering::AcqRel);
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return Join::Follower(Arc::clone(flight));
        }
        let flight = Arc::new(Flight {
            budget: budget(),
            waiters: AtomicUsize::new(1),
            result: Mutex::new(None),
            cv: Condvar::new(),
        });
        flights.insert(key.to_string(), Arc::clone(&flight));
        Join::Leader(flight)
    }

    /// Publishes the leader's outcome: removes the flight from the
    /// table (later requests start fresh — and will hit the cache) and
    /// wakes every follower.
    pub fn complete(&self, key: &str, flight: &Flight, outcome: JobOutcome) {
        lock_unpoisoned(&self.flights).remove(key);
        *lock_unpoisoned(&flight.result) = Some(outcome);
        flight.cv.notify_all();
    }

    /// A waiter gives up (disconnect or deadline). Cancels the
    /// flight's budget when nobody is left to read the outcome.
    pub fn detach(&self, flight: &Flight) {
        if flight.waiters.fetch_sub(1, Ordering::AcqRel) == 1 {
            flight.budget.cancel();
        }
    }

    /// Cancels every in-flight budget (drain-timeout enforcement).
    pub fn cancel_all(&self) {
        for flight in lock_unpoisoned(&self.flights).values() {
            flight.budget.cancel();
        }
    }

    /// Total requests that attached to an existing flight instead of
    /// compiling (N identical concurrent requests add N−1).
    pub fn coalesced_total(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Flights currently in the table.
    pub fn in_flight(&self) -> usize {
        lock_unpoisoned(&self.flights).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn outcome(name: &str) -> JobOutcome {
        JobOutcome {
            name: name.to_string(),
            cache_hit: false,
            report: None,
            error: Some("test".into()),
            error_class: Some("error".into()),
            degraded: None,
            retries: 0,
            trace_id: None,
        }
    }

    #[test]
    fn second_join_is_follower() {
        let c = Coalescer::new();
        let leader = match c.join("k", Budget::cancellable) {
            Join::Leader(f) => f,
            Join::Follower(_) => panic!("first join must lead"),
        };
        assert_eq!(c.in_flight(), 1);
        let follower = match c.join("k", Budget::cancellable) {
            Join::Follower(f) => f,
            Join::Leader(_) => panic!("second join must follow"),
        };
        assert!(Arc::ptr_eq(&leader, &follower));
        assert_eq!(c.coalesced_total(), 1);
        assert_eq!(leader.waiters(), 2);
        // A different key gets its own flight.
        assert!(matches!(
            c.join("other", Budget::cancellable),
            Join::Leader(_)
        ));
    }

    #[test]
    fn followers_wake_with_leader_outcome() {
        let c = Arc::new(Coalescer::new());
        let leader = match c.join("k", Budget::cancellable) {
            Join::Leader(f) => f,
            _ => unreachable!(),
        };
        let mut waiters = Vec::new();
        for _ in 0..3 {
            let c = Arc::clone(&c);
            waiters.push(std::thread::spawn(move || {
                let flight = match c.join("k", Budget::cancellable) {
                    Join::Follower(f) => f,
                    Join::Leader(_) => panic!("leader already in flight"),
                };
                flight.wait(None).expect("outcome published")
            }));
        }
        // Give the followers a moment to actually park.
        while c.coalesced_total() < 3 {
            std::thread::yield_now();
        }
        c.complete("k", &leader, outcome("shared"));
        for w in waiters {
            assert_eq!(w.join().unwrap().name, "shared");
        }
        assert_eq!(c.in_flight(), 0, "completed flight must leave the table");
    }

    #[test]
    fn wait_deadline_expires_without_result() {
        let c = Coalescer::new();
        let flight = match c.join("k", Budget::cancellable) {
            Join::Leader(f) => f,
            _ => unreachable!(),
        };
        let t0 = Instant::now();
        let got = flight.wait(Some(Instant::now() + Duration::from_millis(30)));
        assert!(got.is_none());
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn last_detach_cancels_flight_budget() {
        let c = Coalescer::new();
        let leader = match c.join("k", Budget::cancellable) {
            Join::Leader(f) => f,
            _ => unreachable!(),
        };
        let follower = match c.join("k", Budget::cancellable) {
            Join::Follower(f) => f,
            _ => unreachable!(),
        };
        c.detach(&follower);
        assert!(
            !leader.budget.is_cancelled(),
            "leader still waiting: no cancel"
        );
        c.detach(&leader);
        assert!(
            leader.budget.is_cancelled(),
            "audience gone: compile must be cancelled"
        );
    }

    #[test]
    fn completion_after_abandonment_is_harmless() {
        let c = Coalescer::new();
        let leader = match c.join("k", Budget::cancellable) {
            Join::Leader(f) => f,
            _ => unreachable!(),
        };
        c.detach(&leader);
        c.complete("k", &leader, outcome("late"));
        assert_eq!(c.in_flight(), 0);
        // A fresh request for the key starts a new flight.
        assert!(matches!(c.join("k", Budget::cancellable), Join::Leader(_)));
    }
}
