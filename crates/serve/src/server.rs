//! The daemon: accept loop, request routing, worker pool, drain.
//!
//! One [`ServerState`] holds everything resident: the report cache,
//! the pipeline recorder, the flight table, the async job queue, and
//! the server-wide root [`Budget`]. Every request compiles under a
//! *scope* of that root ([`Budget::scoped_child`]): cancelling a
//! request (client disconnect, per-request deadline) never touches the
//! root, while cancelling the root (drain timeout) reaches every
//! in-flight compile through the ancestor chain.

use crate::coalesce::{Coalescer, Join};
use crate::http::{read_request, write_response, HttpError, Request, Response};
use crate::jobs::{JobState, JobTable, SubmitError};
use crate::metrics::{render, ServiceGauges, ServiceMetrics};
use crate::traces::TraceStore;
use crate::{lock_unpoisoned, signal};
use ptmap_core::PtMapConfig;
use ptmap_governor::Budget;
use ptmap_learn::{LearnConfig, LearnEngine};
use ptmap_mapper::BackendKind;
use ptmap_pipeline::{
    compile_job_traced, request_key, BatchConfig, Job, JobOutcome, JobSpec, Recorder, ReportCache,
};
use ptmap_trace::obs::{EventLog, Level, LogFormat};
use ptmap_trace::{AttrValue, SamplePolicy, Tracer};
use serde_json::Value;
use std::io::Read;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How the daemon is configured (flags + defaults).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:7199` by default; port `0` asks the OS
    /// for an ephemeral port — the chosen address is printed on boot).
    pub addr: String,
    /// Async worker threads draining the `POST /jobs` queue.
    pub workers: usize,
    /// Bound on queued (not yet running) async jobs.
    pub queue_cap: usize,
    /// Most leader compiles running at once; beyond this, new flights
    /// are refused with `503` (admission control).
    pub max_inflight: usize,
    /// Persistent report cache directory (`None` = in-memory).
    pub cache_dir: Option<PathBuf>,
    /// Base compiler configuration shared by every request.
    pub base: PtMapConfig,
    /// Retry-ladder depth per compile.
    pub max_retries: u32,
    /// Per-request compile deadline when the client sends none; also
    /// the cap on client-supplied `X-Ptmap-Deadline-Ms`.
    pub default_timeout: Duration,
    /// How long drain waits for in-flight work before cancelling it.
    pub drain_timeout: Duration,
    /// Head-based trace sampling probability in `[0, 1]`: the fraction
    /// of compiles whose trace is retained in the ring buffer behind
    /// `GET /jobs/<id>/trace`.
    pub trace_sample: f64,
    /// Slow-compile threshold: a compile slower than this keeps its
    /// trace even when sampled out, so outliers are always inspectable.
    pub trace_slow_ms: Option<u64>,
    /// Online cost-model learning (`--learn`): `Some` boots a
    /// [`LearnEngine`] that taps every completed compile, fine-tunes in
    /// the background, and hot-swaps the learned model behind
    /// `GET /model`. `None` disables the subsystem entirely.
    pub learn: Option<LearnConfig>,
    /// Minimum severity of structured events emitted to stderr and
    /// retained by the flight recorder (`--log-level`).
    pub log_level: Level,
    /// How events are rendered on stderr (`--log-format json|text`);
    /// the flight recorder behind `GET /debug/events` always keeps
    /// JSON.
    pub log_format: LogFormat,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7199".to_string(),
            workers: 2,
            queue_cap: 64,
            max_inflight: 8,
            cache_dir: None,
            base: PtMapConfig::default(),
            max_retries: 2,
            default_timeout: Duration::from_secs(300),
            drain_timeout: Duration::from_secs(20),
            trace_sample: 1.0,
            trace_slow_ms: None,
            learn: None,
            log_level: Level::Info,
            log_format: LogFormat::Text,
        }
    }
}

/// What the drain reported when the server exited.
#[derive(Debug, Clone)]
pub struct DrainSummary {
    /// Requests handled over the server's lifetime.
    pub requests: u64,
    /// Underlying compiles started.
    pub compiles: u64,
    /// Requests served by coalescing onto another flight.
    pub coalesced: u64,
    /// Whether everything in flight finished inside the drain timeout
    /// (false means the root budget had to cancel stragglers).
    pub clean: bool,
}

/// Everything the handler threads share.
pub(crate) struct ServerState {
    config: ServeConfig,
    cache: ReportCache,
    recorder: Recorder,
    coalescer: Arc<Coalescer>,
    jobs: JobTable,
    metrics: ServiceMetrics,
    /// Ring buffer of retained compile traces (`GET /jobs/<id>/trace`).
    traces: TraceStore,
    /// Structured event log + flight recorder (`GET /debug/events`).
    log: Arc<EventLog>,
    /// The online-learning engine (`--learn`); doubles as the pipeline
    /// sample tap.
    learn: Option<Arc<LearnEngine>>,
    /// The server-wide root budget; every request scope descends from
    /// it, so cancelling it (drain timeout) cancels all compiles.
    root: Budget,
    /// In-process shutdown request (tests; the CLI uses [`signal`]).
    stop: AtomicBool,
    draining: AtomicBool,
    /// Leader compiles currently running.
    inflight: AtomicUsize,
    /// Async worker threads currently alive.
    workers_alive: AtomicUsize,
    /// Open HTTP connections (drain waits for zero).
    conns: Mutex<usize>,
    conns_cv: Condvar,
    /// Monotonic id handed to jobs submitted via `/compile` has no
    /// meaning; this counts *requests* for the drain summary.
    requests: AtomicU64,
}

impl ServerState {
    fn gauges(&self) -> ServiceGauges {
        let (hits, misses) = self.cache.stats();
        ServiceGauges {
            queue_depth: self.jobs.depth(),
            inflight_compiles: self.inflight.load(Ordering::Relaxed),
            flights_in_flight: self.coalescer.in_flight(),
            coalesced_total: self.coalescer.coalesced_total(),
            workers_alive: self.workers_alive.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            cache_quarantines: self.cache.quarantines(),
            cache_entries: self.cache.len(),
            trace_entries: self.traces.len(),
        }
    }

    /// The sampling policy the flag set configures.
    fn trace_policy(&self) -> SamplePolicy {
        SamplePolicy {
            sample: self.config.trace_sample,
            slow_ms: self.config.trace_slow_ms,
        }
    }

    fn render_metrics(&self) -> String {
        let (spans, counters) = self.recorder.snapshot();
        let mut out = render(&self.metrics, &self.gauges(), &spans, &counters);
        let fallbacks = counters.get("predictor_fallbacks").copied().unwrap_or(0);
        out.push_str(&format!(
            "# HELP ptmap_predictor_fallbacks_total Compiles that fell back to the \
             analytical predictor because a GNN model failed to load.\n\
             # TYPE ptmap_predictor_fallbacks_total counter\n\
             ptmap_predictor_fallbacks_total {fallbacks}\n"
        ));
        if let Some(engine) = &self.learn {
            out.push_str(&engine.render_metrics());
        }
        out
    }
}

/// A handle for telling a running server to drain (tests and the
/// binary's own wiring; external callers send SIGTERM).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Requests a graceful drain, as if SIGTERM arrived.
    pub fn shutdown(&self) {
        self.state.stop.store(true, Ordering::Release);
    }

    /// Rendered `/metrics` document (test convenience).
    pub fn metrics_text(&self) -> String {
        self.state.render_metrics()
    }
}

/// The bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// Decrements the open-connection count (and wakes the drain waiter)
/// when a handler thread exits, however it exits.
struct ConnGuard {
    state: Arc<ServerState>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let mut conns = lock_unpoisoned(&self.state.conns);
        *conns = conns.saturating_sub(1);
        self.state.conns_cv.notify_all();
    }
}

/// Decrements the in-flight leader count even if the compile panics.
struct InflightGuard<'a> {
    state: &'a ServerState,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.state.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Builds a failure outcome in the same shape the pipeline produces,
/// so every error a client sees — admission or compile — parses the
/// same way.
pub(crate) fn error_outcome(name: &str, class: &str, message: String) -> JobOutcome {
    JobOutcome {
        name: name.to_string(),
        cache_hit: false,
        report: None,
        error: Some(message),
        error_class: Some(class.to_string()),
        degraded: None,
        retries: 0,
        trace_id: None,
    }
}

/// HTTP status for a compile outcome.
pub(crate) fn outcome_status(outcome: &JobOutcome) -> u16 {
    if outcome.report.is_some() {
        return 200;
    }
    match outcome.error_class.as_deref() {
        Some("timeout") => 504,
        Some("cancelled") | Some("overloaded") | Some("draining") => 503,
        _ => 500,
    }
}

fn outcome_response(outcome: &JobOutcome) -> Response {
    let body = serde_json::to_string(outcome).unwrap_or_else(|_| "{}".to_string());
    Response::json(outcome_status(outcome), body)
}

/// A structured 400: the human message plus a machine-readable reason
/// (`bad-deadline`, `bad-quality`, `bad-spec`) so clients and the
/// gateway can distinguish *which* input was malformed without string
/// matching.
fn bad_request(reason: &str, message: String) -> Response {
    Response::json(
        400,
        format!("{{\"error\":{message:?},\"reason\":{reason:?}}}"),
    )
}

/// Stamps a load-shedding 503 with the retry hint every rejected
/// client needs: when to come back (`Retry-After`, seconds) — without
/// it, a fleet of rejected clients retries immediately and the
/// overload feeds itself.
fn with_retry_after(resp: Response, seconds: u64) -> Response {
    resp.with_header("Retry-After", seconds.max(1).to_string())
}

/// Attaches the compile's trace id to the response, if it has one.
fn with_trace_header(resp: Response, outcome: &JobOutcome) -> Response {
    match &outcome.trace_id {
        Some(id) => resp.with_header("X-Ptmap-Trace-Id", id.clone()),
        None => resp,
    }
}

/// The effective base config for one request: the server-wide default
/// with the client's `X-Ptmap-Quality` backend override (if any)
/// applied. The override is folded in *before* the request key is
/// computed, so an exact-tier request never coalesces onto (or reads a
/// cache entry from) a heuristic flight, and vice versa.
fn effective_base(request: &Request, config: &ServeConfig) -> Result<PtMapConfig, String> {
    let mut base = config.base.clone();
    if let Some(raw) = request.header("x-ptmap-quality") {
        base.mapper.backend = raw
            .parse::<BackendKind>()
            .map_err(|e| format!("bad X-Ptmap-Quality: {e}"))?;
    }
    Ok(base)
}

/// The per-flight compile configuration every leader runs under.
fn leader_batch_config(
    state: &ServerState,
    base: PtMapConfig,
    flight: &crate::coalesce::Flight,
) -> BatchConfig {
    BatchConfig {
        workers: 1,
        cache_dir: None,
        base,
        job_timeout: None,
        budget: flight.budget.clone(),
        max_retries: state.config.max_retries,
        // File export is the batch CLI's sink; the daemon renders and
        // retains traces itself (see `store_trace`).
        trace: None,
        // Online-learning ingest: observe-only, so it never perturbs
        // compile results or cache keys.
        tap: state
            .learn
            .as_ref()
            .map(|l| std::sync::Arc::clone(l) as std::sync::Arc<dyn ptmap_eval::SampleTap>),
    }
}

/// Finishes a leader's tracer and retains the rendered Chrome trace if
/// the sampling policy keeps it. `force_keep` bypasses sampling for
/// client-supplied trace ids (the client asked for this one by name).
/// Outcomes surface as `traces_stored` / `traces_sampled_out` pipeline
/// events in `/metrics`.
fn store_trace(state: &ServerState, tracer: &Tracer, force_keep: bool, wall: Duration) {
    let Some(trace) = tracer.finish() else {
        return;
    };
    if force_keep || state.trace_policy().keep(&trace.trace_id, wall) {
        state.traces.insert(trace);
        state.recorder.incr("traces_stored", 1);
    } else {
        state.recorder.incr("traces_sampled_out", 1);
    }
}

impl Server {
    /// Binds the listener and builds the resident state. The cache
    /// falls back to memory-only (with a warning) if the directory
    /// cannot be created, mirroring `run_batch`.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        // Pin the start-time gauge and publish the event log early, so
        // library code (pipeline cache warnings) reaches it too.
        crate::metrics::process_start_seconds();
        let log = Arc::new(EventLog::new("serve", config.log_level, config.log_format));
        ptmap_trace::obs::install(Arc::clone(&log));
        let cache = match &config.cache_dir {
            Some(dir) => ReportCache::with_dir(dir).unwrap_or_else(|e| {
                log.warn(
                    "cache_dir_fallback",
                    None,
                    &format!("cache dir {}: {e}; falling back to memory", dir.display()),
                    &[("dir", AttrValue::Str(dir.display().to_string()))],
                );
                ReportCache::in_memory()
            }),
            None => ReportCache::in_memory(),
        };
        let queue_cap = config.queue_cap.max(1);
        let learn = match config.learn.clone() {
            Some(lc) => Some(Arc::new(LearnEngine::new(lc)?)),
            None => None,
        };
        let state = Arc::new(ServerState {
            cache,
            learn,
            log,
            recorder: Recorder::new(),
            coalescer: Arc::new(Coalescer::new()),
            jobs: JobTable::new(queue_cap),
            metrics: ServiceMetrics::new(),
            traces: TraceStore::new(),
            root: Budget::cancellable(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            workers_alive: AtomicUsize::new(0),
            conns: Mutex::new(0),
            conns_cv: Condvar::new(),
            requests: AtomicU64::new(0),
            config,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown/introspection handle usable from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until SIGTERM/SIGINT (or [`ServerHandle::shutdown`]),
    /// then drains and returns the lifetime summary.
    pub fn run(self) -> DrainSummary {
        let state = Arc::clone(&self.state);

        // The async worker pool.
        let mut workers = Vec::new();
        for i in 0..state.config.workers {
            let state = Arc::clone(&state);
            state.workers_alive.fetch_add(1, Ordering::AcqRel);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ptmap-worker-{i}"))
                    .spawn(move || {
                        while let Some(queued) = state.jobs.next() {
                            let outcome = run_async_job(&state, &queued.spec);
                            state.jobs.finish(queued.id, outcome);
                        }
                        state.workers_alive.fetch_sub(1, Ordering::AcqRel);
                    })
                    .expect("spawn worker"),
            );
        }

        // The background trainer: drains the sample tap, fine-tunes,
        // shadows, and promotes — entirely off the request path. Each
        // pump runs under a scope of the root budget, so the drain
        // timeout's root cancel stops training within one epoch. The
        // final iteration after the stop flag flushes pending samples.
        let trainer = state.learn.as_ref().map(|engine| {
            let engine = Arc::clone(engine);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("ptmap-learn".to_string())
                .spawn(move || loop {
                    let stopping = state.stop.load(Ordering::Acquire)
                        || signal::shutdown_requested()
                        || state.draining.load(Ordering::Acquire);
                    let tracer = Tracer::root("learn");
                    let budget = state.root.scoped_child(None);
                    let t0 = Instant::now();
                    let report = engine.pump(&budget, &tracer);
                    // Lifecycle pumps (a training round or a verdict)
                    // are rare and always worth a retained trace.
                    if report.trained || report.promoted || report.rejected {
                        store_trace(&state, &tracer, true, t0.elapsed());
                    }
                    if stopping {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(25));
                })
                .expect("spawn learn trainer")
        });

        // Accept loop: nonblocking so the shutdown flags are polled
        // between accepts.
        loop {
            if state.stop.load(Ordering::Acquire) || signal::shutdown_requested() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    *lock_unpoisoned(&state.conns) += 1;
                    let state = Arc::clone(&state);
                    let _ = std::thread::Builder::new()
                        .name("ptmap-conn".to_string())
                        .spawn(move || {
                            let _guard = ConnGuard {
                                state: Arc::clone(&state),
                            };
                            handle_connection(&state, stream);
                        });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    state.log.warn(
                        "accept_error",
                        None,
                        &format!("accept: {e}; continuing"),
                        &[],
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }

        // Drain: stop accepting, let in-flight work finish, then
        // cancel stragglers through the root budget.
        drop(self.listener);
        state.draining.store(true, Ordering::Release);
        state.jobs.close();

        let deadline = Instant::now() + state.config.drain_timeout;
        let mut clean = wait_idle(&state, deadline);
        if !clean {
            state.log.warn(
                "drain_timeout",
                None,
                "drain timeout elapsed; cancelling in-flight work",
                &[(
                    "timeout_s",
                    AttrValue::UInt(state.config.drain_timeout.as_secs()),
                )],
            );
            state.root.cancel();
            state.coalescer.cancel_all();
            // Cancellation is cooperative; give compiles a bounded
            // window to observe it.
            clean = wait_idle(&state, Instant::now() + Duration::from_secs(10));
        }
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(trainer) = trainer {
            let _ = trainer.join();
        }

        // Flush the final metrics snapshot and the flight recorder
        // where an operator (or the CI smoke test) can see them after
        // the port is gone.
        for (endpoint, count, p50, p95, p99) in state.metrics.latency_quantiles() {
            state.log.info(
                "latency",
                None,
                "",
                &[
                    ("endpoint", AttrValue::Str(endpoint)),
                    ("count", AttrValue::UInt(count)),
                    ("p50_s", AttrValue::Float(p50)),
                    ("p95_s", AttrValue::Float(p95)),
                    ("p99_s", AttrValue::Float(p99)),
                ],
            );
        }
        state.log.dump_to_stderr("drain");
        eprintln!("--- final metrics ---\n{}", state.render_metrics());

        DrainSummary {
            requests: state.metrics.requests_total(),
            compiles: state.metrics.compiles_total(),
            coalesced: state.coalescer.coalesced_total(),
            clean,
        }
    }
}

/// Waits until no connection is open and no async job is queued or
/// running, or `deadline` passes. Returns whether idle was reached.
fn wait_idle(state: &ServerState, deadline: Instant) -> bool {
    let mut conns = lock_unpoisoned(&state.conns);
    loop {
        if *conns == 0 && state.jobs.active() == 0 {
            return true;
        }
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        // The condvar covers connection changes; job-table changes are
        // picked up by the bounded wait.
        let wait = (deadline - now).min(Duration::from_millis(50));
        conns = state
            .conns_cv
            .wait_timeout(conns, wait)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .0;
    }
}

/// Reads, routes, answers, closes.
fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    // A client that connects and never sends a full request must not
    // pin a handler thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(HttpError::BadRequest(m)) => {
            let resp = Response::json(400, format!("{{\"error\":{:?}}}", m));
            let _ = write_response(&mut stream, &resp);
            return;
        }
        Err(HttpError::TooLarge(m)) => {
            let resp = Response::json(413, format!("{{\"error\":{:?}}}", m));
            let _ = write_response(&mut stream, &resp);
            return;
        }
        // The socket died mid-request; nobody is listening for errors.
        Err(HttpError::Io(_)) => return,
    };
    let _ = stream.set_read_timeout(None);
    state.requests.fetch_add(1, Ordering::Relaxed);

    let t0 = Instant::now();
    let (endpoint, response) = route(state, &request, &stream);
    state
        .metrics
        .observe_request(endpoint, response.status, t0.elapsed());
    let _ = write_response(&mut stream, &response);
    // Wake any disconnect watcher still parked on the socket.
    let _ = stream.shutdown(Shutdown::Both);
}

/// Dispatches one request; returns the endpoint label (for metrics)
/// and the response.
fn route(
    state: &Arc<ServerState>,
    request: &Request,
    stream: &TcpStream,
) -> (&'static str, Response) {
    // Split an attached query string off before matching, so
    // `/jobs/<id>/trace?format=raw` routes like `/jobs/<id>/trace`.
    let (path, query) = match request.path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (request.path.as_str(), None),
    };
    match (request.method.as_str(), path) {
        ("POST", "/compile") => ("compile", handle_compile(state, request, stream)),
        ("POST", "/jobs") => ("jobs_submit", handle_submit(state, request)),
        ("GET", path) if path.starts_with("/jobs/") && path.ends_with("/trace") => {
            ("jobs_trace", handle_trace(state, path, query))
        }
        ("GET", path) if path.starts_with("/jobs/") => ("jobs_poll", handle_poll(state, path)),
        ("GET", "/metrics") => ("metrics", Response::text(200, state.render_metrics())),
        ("GET", "/debug/events") => (
            "debug_events",
            crate::events::events_response(&state.log, query),
        ),
        ("GET", "/model") => ("model", handle_model(state)),
        ("GET", "/healthz") => ("healthz", handle_healthz(state)),
        (_, "/compile" | "/jobs" | "/metrics" | "/debug/events" | "/model" | "/healthz") => (
            "other",
            Response::json(405, "{\"error\":\"method not allowed\"}".to_string()),
        ),
        _ => (
            "other",
            Response::json(404, "{\"error\":\"not found\"}".to_string()),
        ),
    }
}

/// Parses the request body as a job spec.
fn parse_spec(body: &[u8]) -> Result<JobSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    serde_json::from_str::<JobSpec>(text).map_err(|e| format!("job spec: {e}"))
}

/// The effective compile deadline for a request: the client's
/// `X-Ptmap-Deadline-Ms`, capped by the server default.
fn effective_timeout(request: &Request, config: &ServeConfig) -> Result<Duration, String> {
    match request.header("x-ptmap-deadline-ms") {
        None => Ok(config.default_timeout),
        Some(raw) => {
            let ms: u64 = raw
                .parse()
                .map_err(|_| format!("bad X-Ptmap-Deadline-Ms {raw:?}"))?;
            Ok(Duration::from_millis(ms).min(config.default_timeout))
        }
    }
}

/// `POST /compile`: admission check, coalesced compile, synchronous
/// response.
fn handle_compile(state: &Arc<ServerState>, request: &Request, stream: &TcpStream) -> Response {
    if state.draining.load(Ordering::Acquire) {
        state.metrics.reject("draining");
        return with_retry_after(
            outcome_response(&error_outcome(
                "",
                "draining",
                "server is draining".to_string(),
            )),
            state.config.drain_timeout.as_secs(),
        );
    }
    let spec = match parse_spec(&request.body) {
        Ok(s) => s,
        Err(e) => return bad_request("bad-spec", e),
    };
    let timeout = match effective_timeout(request, &state.config) {
        Ok(t) => t,
        Err(e) => return bad_request("bad-deadline", e),
    };
    let name = spec.name.clone().unwrap_or_else(|| spec.kernel.clone());

    // Admission: the governor check runs before any resolution or
    // queueing, so an already-expired deadline costs one branch.
    let budget = state.root.scoped_child(Some(timeout));
    if let Err(e) = budget.check() {
        state.metrics.reject("deadline");
        return outcome_response(&error_outcome(&name, e.class(), e.to_string()));
    }

    let job = match Job::resolve(&spec) {
        Ok(j) => j,
        Err(e) => return bad_request("bad-spec", e),
    };
    let base = match effective_base(request, &state.config) {
        Ok(b) => b,
        Err(e) => return bad_request("bad-quality", e),
    };
    let quality = base.mapper.backend;
    let key = request_key(&job, &base);

    // A client-supplied trace id is adopted verbatim (and force-keeps
    // the trace — the client asked for this one by name); otherwise
    // the leader mints one.
    let client_trace_id = request.header("x-ptmap-trace-id").map(str::to_string);

    match state.coalescer.join(&key, || budget.clone()) {
        Join::Leader(flight) => {
            // Capacity gate applies to new flights only — followers
            // ride along for free.
            let previous = state.inflight.fetch_add(1, Ordering::AcqRel);
            let guard = InflightGuard { state };
            if previous >= state.config.max_inflight {
                drop(guard);
                state.metrics.reject("capacity");
                let outcome = error_outcome(
                    &job.name,
                    "overloaded",
                    format!(
                        "{} compiles already in flight (max {})",
                        previous, state.config.max_inflight
                    ),
                );
                state.coalescer.complete(&key, &flight, outcome.clone());
                // Capacity pressure is transient: tell the client when
                // to retry instead of letting it hammer the gate.
                return with_retry_after(outcome_response(&outcome), 1);
            }
            let _watcher = spawn_disconnect_watcher(state, stream, &flight);
            let t0 = Instant::now();
            let tracer = match &client_trace_id {
                Some(id) => Tracer::root_with_id(&job.name, id.clone()),
                None => Tracer::root(&job.name),
            };
            let (outcome, _job_metrics) = compile_job_traced(
                &job,
                &leader_batch_config(state, base, &flight),
                &state.cache,
                &state.recorder,
                &tracer,
            );
            drop(guard);
            // A cache hit never started a mapper run; the compile
            // counter tracks real underlying compiles.
            if !outcome.cache_hit {
                state.metrics.compile_started();
            }
            // Retain the trace *before* publishing the outcome, so a
            // follower acting on the outcome's trace id finds it.
            store_trace(state, &tracer, client_trace_id.is_some(), t0.elapsed());
            state.log.info(
                "compile",
                outcome.trace_id.as_deref(),
                "",
                &[
                    ("name", AttrValue::Str(job.name.clone())),
                    (
                        "status",
                        AttrValue::UInt(u64::from(outcome_status(&outcome))),
                    ),
                    ("cache_hit", AttrValue::Bool(outcome.cache_hit)),
                    ("retries", AttrValue::UInt(u64::from(outcome.retries))),
                    ("seconds", AttrValue::Float(t0.elapsed().as_secs_f64())),
                ],
            );
            state.coalescer.complete(&key, &flight, outcome.clone());
            with_trace_header(outcome_response(&outcome), &outcome)
                .with_header("X-Ptmap-Quality", quality.as_str().to_string())
        }
        Join::Follower(flight) => {
            let settled = spawn_disconnect_watcher(state, stream, &flight);
            let result = flight.wait(budget.deadline());
            let already_settled = settled.swap(true, Ordering::AcqRel);
            match result {
                Some(outcome) => with_trace_header(outcome_response(&outcome), &outcome)
                    .with_header("X-Ptmap-Quality", quality.as_str().to_string())
                    .with_header("X-Ptmap-Coalesced", "1".to_string()),
                None => {
                    // Own deadline expired while the leader was still
                    // compiling; stop counting as an audience member.
                    if !already_settled {
                        state.coalescer.detach(&flight);
                    }
                    state.metrics.reject("deadline");
                    outcome_response(&error_outcome(
                        &job.name,
                        "timeout",
                        "deadline expired while waiting for in-flight compile".to_string(),
                    ))
                    .with_header("X-Ptmap-Coalesced", "1".to_string())
                }
            }
        }
    }
}

/// Watches the request socket while the handler is busy compiling or
/// waiting; a client that disconnects detaches from the flight (the
/// last detach cancels the compile's budget). The returned flag gates
/// the detach: whichever side (watcher on EOF, handler on finish)
/// swaps it first owns the waiter slot.
fn spawn_disconnect_watcher(
    state: &Arc<ServerState>,
    stream: &TcpStream,
    flight: &Arc<crate::coalesce::Flight>,
) -> Arc<AtomicBool> {
    let settled = Arc::new(AtomicBool::new(false));
    let Ok(mut watch) = stream.try_clone() else {
        return settled;
    };
    let _ = watch.set_read_timeout(None);
    let coalescer = Arc::clone(&state.coalescer);
    let flight = Arc::clone(flight);
    let settled_for_watcher = Arc::clone(&settled);
    let _ = std::thread::Builder::new()
        .name("ptmap-watch".to_string())
        .spawn(move || {
            let mut buf = [0u8; 64];
            loop {
                match watch.read(&mut buf) {
                    // EOF: the client closed (or the handler shut the
                    // socket down after responding).
                    Ok(0) => break,
                    // Unexpected extra bytes; keep watching.
                    Ok(_) => continue,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
            if !settled_for_watcher.swap(true, Ordering::AcqRel) {
                coalescer.detach(&flight);
            }
        });
    settled
}

/// Leader half of a compile, shared by the HTTP path and the async
/// workers... the async variant: resolve, coalesce, compile, no
/// disconnect watcher (the submitter polls; nobody is on a socket).
fn run_async_job(state: &Arc<ServerState>, spec: &JobSpec) -> JobOutcome {
    let job = match Job::resolve(spec) {
        Ok(j) => j,
        Err(e) => {
            let name = spec.name.clone().unwrap_or_else(|| spec.kernel.clone());
            return error_outcome(&name, "error", e);
        }
    };
    let budget = state.root.scoped_child(Some(state.config.default_timeout));
    let key = request_key(&job, &state.config.base);
    match state.coalescer.join(&key, || budget.clone()) {
        Join::Leader(flight) => {
            state.inflight.fetch_add(1, Ordering::AcqRel);
            let guard = InflightGuard { state };
            let t0 = Instant::now();
            let tracer = Tracer::root(&job.name);
            let (outcome, _metrics) = compile_job_traced(
                &job,
                &leader_batch_config(state, state.config.base.clone(), &flight),
                &state.cache,
                &state.recorder,
                &tracer,
            );
            drop(guard);
            if !outcome.cache_hit {
                state.metrics.compile_started();
            }
            // Retain before publishing, as in the synchronous path: a
            // poller that sees `done` must find the trace.
            store_trace(state, &tracer, false, t0.elapsed());
            state.log.info(
                "compile",
                outcome.trace_id.as_deref(),
                "",
                &[
                    ("name", AttrValue::Str(job.name.clone())),
                    (
                        "status",
                        AttrValue::UInt(u64::from(outcome_status(&outcome))),
                    ),
                    ("cache_hit", AttrValue::Bool(outcome.cache_hit)),
                    ("retries", AttrValue::UInt(u64::from(outcome.retries))),
                    ("async", AttrValue::Bool(true)),
                    ("seconds", AttrValue::Float(t0.elapsed().as_secs_f64())),
                ],
            );
            state.coalescer.complete(&key, &flight, outcome.clone());
            outcome
        }
        Join::Follower(flight) => match flight.wait(budget.deadline()) {
            Some(outcome) => outcome,
            None => {
                state.coalescer.detach(&flight);
                error_outcome(
                    &job.name,
                    "timeout",
                    "deadline expired while waiting for in-flight compile".to_string(),
                )
            }
        },
    }
}

/// `POST /jobs`: bounded async submission.
///
/// The compile itself runs later under server defaults, but the
/// request headers are validated *now*: a malformed
/// `X-Ptmap-Deadline-Ms` or `X-Ptmap-Quality` used to be silently
/// ignored here (unlike `/compile`, which rejects it), so a client
/// with a typo'd header got a `202` and no signal that its header did
/// nothing. Malformed values are a structured `400` at submission;
/// well-formed values are accepted (the async path runs under server
/// defaults either way, which the docs state).
fn handle_submit(state: &Arc<ServerState>, request: &Request) -> Response {
    if let Err(e) = effective_timeout(request, &state.config) {
        return bad_request("bad-deadline", e);
    }
    if let Err(e) = effective_base(request, &state.config) {
        return bad_request("bad-quality", e);
    }
    let spec = match parse_spec(&request.body) {
        Ok(s) => s,
        Err(e) => return bad_request("bad-spec", e),
    };
    match state.jobs.submit(spec) {
        Ok(id) => Response::json(202, format!("{{\"id\":{id},\"state\":\"queued\"}}")),
        Err(SubmitError::Full) => {
            state.metrics.reject("queue-full");
            with_retry_after(
                Response::json(
                    503,
                    format!(
                        "{{\"error\":\"queue full ({} jobs)\",\"reason\":\"queue-full\"}}",
                        state.config.queue_cap.max(1)
                    ),
                ),
                1,
            )
        }
        Err(SubmitError::Draining) => {
            state.metrics.reject("draining");
            with_retry_after(
                Response::json(
                    503,
                    "{\"error\":\"server is draining\",\"reason\":\"draining\"}".to_string(),
                ),
                state.config.drain_timeout.as_secs(),
            )
        }
    }
}

/// `GET /jobs/<id>`: poll an async job.
fn handle_poll(state: &Arc<ServerState>, path: &str) -> Response {
    let id_text = &path["/jobs/".len()..];
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::json(400, format!("{{\"error\":\"bad job id {id_text:?}\"}}"));
    };
    match state.jobs.status(id) {
        None => Response::json(404, format!("{{\"error\":\"no job {id}\"}}")),
        Some(status) => {
            let mut fields = vec![
                ("id".to_string(), Value::UInt(id)),
                ("state".to_string(), Value::Str(status.name().to_string())),
            ];
            if let JobState::Done(outcome) = &status {
                match serde_json::to_value(outcome.as_ref()) {
                    Ok(v) => fields.push(("outcome".to_string(), v)),
                    Err(_) => fields.push(("outcome".to_string(), Value::Null)),
                }
            }
            let body =
                serde_json::to_string(&Value::Object(fields)).unwrap_or_else(|_| "{}".to_string());
            let status_code = 200;
            Response::json(status_code, body)
        }
    }
}

/// `GET /jobs/<id>/trace`: the retained trace for a compile.
///
/// `<id>` is either a numeric async-job id — resolved to a trace id
/// through the job table's completed outcome — or a trace id taken
/// from an `X-Ptmap-Trace-Id` response header. The default rendering
/// is Chrome trace-event JSON; `?format=raw` returns the serialized
/// span tree instead, which is what the gateway fetches to stitch a
/// cluster-wide trace.
fn handle_trace(state: &Arc<ServerState>, path: &str, query: Option<&str>) -> Response {
    let id_text = &path["/jobs/".len()..path.len() - "/trace".len()];
    // An exact trace-id match wins (it is unambiguous even when the id
    // happens to be all digits); numeric ids then resolve through the
    // async job table.
    let trace_id = match state.traces.by_trace_id(id_text) {
        Some(_) => id_text.to_string(),
        None => match id_text.parse::<u64>() {
            Err(_) => id_text.to_string(),
            Ok(job_id) => match state.jobs.status(job_id) {
                None => return Response::json(404, format!("{{\"error\":\"no job {job_id}\"}}")),
                Some(JobState::Done(outcome)) => match outcome.trace_id {
                    Some(id) => id,
                    None => {
                        return Response::json(
                            404,
                            format!("{{\"error\":\"job {job_id} has no trace\"}}"),
                        )
                    }
                },
                Some(_) => {
                    return Response::json(
                        404,
                        format!("{{\"error\":\"job {job_id} is not done yet\"}}"),
                    )
                }
            },
        },
    };
    let raw = query
        .map(|q| q.split('&').any(|kv| kv == "format=raw"))
        .unwrap_or(false);
    match state.traces.by_trace_id(&trace_id) {
        Some(stored) => {
            let body = if raw {
                serde_json::to_string(stored.raw.as_ref()).unwrap_or_else(|_| "{}".to_string())
            } else {
                stored.chrome_json.as_ref().clone()
            };
            Response::json(200, body).with_header("X-Ptmap-Trace-Id", stored.trace_id)
        }
        None => Response::json(
            404,
            format!("{{\"error\":{:?}}}", format!("no trace {trace_id}")),
        ),
    }
}

/// `GET /model`: the online-learning engine's state — serving model
/// version, sample/training/promotion counters, live MAPE, and any
/// in-flight shadow window. `404` when `--learn` is off.
fn handle_model(state: &Arc<ServerState>) -> Response {
    match &state.learn {
        Some(engine) => Response::json(200, engine.status_json()),
        None => Response::json(
            404,
            "{\"error\":\"online learning disabled (start with --learn)\"}".to_string(),
        ),
    }
}

/// `GET /healthz`: readiness.
fn handle_healthz(state: &Arc<ServerState>) -> Response {
    if state.draining.load(Ordering::Acquire) {
        return Response::json(503, "{\"status\":\"draining\"}".to_string());
    }
    // Workers configured but all dead means async submissions would
    // queue forever.
    if state.config.workers > 0 && state.workers_alive.load(Ordering::Acquire) == 0 {
        return Response::json(503, "{\"status\":\"no workers alive\"}".to_string());
    }
    // The disk cache must stay writable; probe with a real write.
    if let Some(dir) = state.cache.dir() {
        let probe = dir.join(".healthz-probe");
        if std::fs::write(&probe, b"ok").is_err() {
            return Response::json(
                503,
                format!(
                    "{{\"status\":\"cache dir {} not writable\"}}",
                    dir.display()
                ),
            );
        }
        let _ = std::fs::remove_file(&probe);
    }
    Response::json(200, "{\"status\":\"ok\"}".to_string())
}
