//! The `ptmap` command-line compiler.
//!
//! ```text
//! ptmap compile --source kernel.c --arch S4 [--mode pareto]
//!               [--predictor analytical|oracle] [--emit-contexts]
//! ptmap batch   --manifest jobs.json [--jobs N] [--eval-workers N]
//!               [--backend {heuristic|exact|portfolio}]
//!               [--speculate {off|auto|WIDTH}]
//!               [--cache-dir DIR] [--metrics out.json] [--out out.json]
//!               [--trace-dir DIR [--trace-sample P] [--trace-slow-ms MS]]
//! ptmap serve   [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!               [--max-inflight N] [--cache-dir DIR] [--deadline SECS]
//!               [--drain-timeout SECS] [--max-retries N]
//!               [--default-backend {heuristic|exact|portfolio}]
//!               [--speculate {off|auto|WIDTH}]
//!               [--trace-sample P] [--trace-slow-ms MS]
//!               [--learn [--model-dir DIR] [--train-threshold N]
//!                [--shadow-window N] [--promote-margin F]]
//! ptmap gateway --peers HOST:PORT,HOST:PORT,... [--addr HOST:PORT]
//!               [--probe-interval-ms MS] [--failure-threshold N]
//!               [--cooldown-ms MS] [--max-retries N] [--backoff-ms MS]
//!               [--hedge-after-ms MS] [--cache-dir DIR]
//!               [--deadline SECS] [--drain-timeout SECS]
//!               [--default-backend {heuristic|exact|portfolio}]
//! ptmap loadtest [--target HOST:PORT] [--workers N] [--requests N]
//!                [--seed N] [--distinct N] [--deadline-ms MS]
//!                [--log-format {text|json}] [--log-level LEVEL]
//! ptmap archs
//! ptmap parse --source kernel.c
//! ```
//!
//! `kernel.c` is the C-like `#pragma PTMAP` dialect accepted by
//! `ptmap_ir::parse`. Flags accept both `--flag value` and
//! `--flag=value`; unrecognized arguments are usage errors (exit 2).
//! The GNN-assisted flow needs a trained model: `compile` ships the
//! analytical and oracle predictors, while `batch` manifests may also
//! reference checkpoints with `"predictor": "gnn:<model.json>"`.

use ptmap_arch::{presets, CgraArch};
use ptmap_core::{PtMap, PtMapConfig};
use ptmap_eval::{AnalyticalPredictor, IiPredictor, OraclePredictor, RankMode};
use ptmap_ir::dfg::build_dfg;
use ptmap_ir::parse::parse_program;
use ptmap_mapper::{generate_contexts, map_dfg, MapperConfig};
use ptmap_pipeline::{run_batch, BatchConfig, Manifest};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compile") => compile(&args[1..]),
        Some("batch") => batch(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("gateway") => gateway(&args[1..]),
        Some("loadtest") => loadtest(&args[1..]),
        Some("parse") => parse(&args[1..]),
        Some("help" | "--help" | "-h") => {
            println!("{}", usage_text());
            ExitCode::SUCCESS
        }
        Some("version" | "--version" | "-V") => {
            println!("ptmap {}", env!("CARGO_PKG_VERSION"));
            ExitCode::SUCCESS
        }
        Some("archs") => {
            if let Err(e) = Flags::parse(&args[1..], &[], &[]) {
                return usage_error(&e);
            }
            for a in presets::evaluation_suite()
                .iter()
                .chain([&presets::hrea4()])
            {
                println!(
                    "{:<6} {}x{} PEs, CB {} contexts, DB {} KiB",
                    a.name(),
                    a.rows(),
                    a.cols(),
                    a.cb_capacity(),
                    a.db_bytes() / 1024
                );
            }
            ExitCode::SUCCESS
        }
        _ => {
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn usage_text() -> &'static str {
    "usage: ptmap <compile|batch|serve|gateway|loadtest|parse|archs|help|version> [options]\n\
     \x20 compile --source FILE --arch {S4|R4|H6|SL8|HReA4}\n\
     \x20         [--arch-file custom.json]\n\
     \x20         [--mode {performance|pareto}]\n\
     \x20         [--predictor {analytical|oracle}] [--emit-contexts]\n\
     \x20 batch   --manifest jobs.json [--jobs N] [--eval-workers N]\n\
     \x20         [--backend {heuristic|exact|portfolio}]\n\
     \x20         [--speculate {off|auto|WIDTH}]\n\
     \x20         [--cache-dir DIR] [--metrics out.json] [--out out.json]\n\
     \x20         [--validate] [--deadline SECS] [--job-timeout SECS]\n\
     \x20         [--max-retries N]\n\
     \x20         [--trace-dir DIR [--trace-sample P] [--trace-slow-ms MS]]\n\
     \x20 serve   [--addr HOST:PORT] [--workers N] [--queue-cap N]\n\
     \x20         [--max-inflight N] [--cache-dir DIR] [--deadline SECS]\n\
     \x20         [--drain-timeout SECS] [--max-retries N]\n\
     \x20         [--default-backend {heuristic|exact|portfolio}]\n\
     \x20         [--speculate {off|auto|WIDTH}]\n\
     \x20         [--trace-sample P] [--trace-slow-ms MS]\n\
     \x20         [--log-format {text|json}] [--log-level {debug|info|warn|error}]\n\
     \x20         [--learn [--model-dir DIR] [--train-threshold N]\n\
     \x20          [--shadow-window N] [--promote-margin F]]\n\
     \x20 gateway --peers HOST:PORT,HOST:PORT,... [--addr HOST:PORT]\n\
     \x20         [--probe-interval-ms MS] [--failure-threshold N]\n\
     \x20         [--cooldown-ms MS] [--max-retries N] [--backoff-ms MS]\n\
     \x20         [--hedge-after-ms MS] [--cache-dir DIR]\n\
     \x20         [--deadline SECS] [--drain-timeout SECS]\n\
     \x20         [--default-backend {heuristic|exact|portfolio}]\n\
     \x20         [--speculate {off|auto|WIDTH}] [--validate]\n\
     \x20         [--trace-dir DIR]\n\
     \x20         [--log-format {text|json}] [--log-level {debug|info|warn|error}]\n\
     \x20 loadtest [--target HOST:PORT] [--workers N] [--requests N]\n\
     \x20         [--seed N] [--distinct N] [--deadline-ms MS]\n\
     \x20         [--log-format {text|json}] [--log-level {debug|info|warn|error}]\n\
     \x20 parse   --source FILE"
}

fn print_usage() {
    eprintln!("{}", usage_text());
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    print_usage();
    ExitCode::from(2)
}

/// Strictly parsed flags: every argument must be a declared value flag
/// (`--flag value` or `--flag=value`) or boolean flag; anything else is
/// a usage error.
struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<Flags, String> {
        let mut values = BTreeMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(body) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument {arg}"));
            };
            let (name, inline) = match body.split_once('=') {
                Some((n, v)) => (n, Some(v)),
                None => (body, None),
            };
            let flag = format!("--{name}");
            if value_flags.contains(&flag.as_str()) {
                let value = match inline {
                    Some(v) => v.to_string(),
                    None => {
                        i += 1;
                        args.get(i)
                            .cloned()
                            .ok_or_else(|| format!("{flag} needs a value"))?
                    }
                };
                if values.insert(flag.clone(), value).is_some() {
                    return Err(format!("{flag} given twice"));
                }
            } else if bool_flags.contains(&flag.as_str()) {
                if inline.is_some() {
                    return Err(format!("{flag} takes no value"));
                }
                switches.push(flag);
            } else {
                return Err(format!("unrecognized flag {flag}"));
            }
            i += 1;
        }
        Ok(Flags { values, switches })
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    fn has(&self, flag: &str) -> bool {
        self.switches.iter().any(|s| s == flag)
    }
}

fn load_source(flags: &Flags) -> Result<ptmap_ir::Program, String> {
    let path = flags.get("--source").ok_or("missing --source FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("kernel");
    parse_program(name, &text).map_err(|e| format!("{path}: {e}"))
}

fn load_arch(flags: &Flags) -> Result<CgraArch, String> {
    if let Some(path) = flags.get("--arch-file") {
        return ptmap_arch::io::load(path).map_err(|e| e.to_string());
    }
    ptmap_pipeline::manifest::resolve_arch(flags.get("--arch").unwrap_or("S4"))
}

fn parse(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args, &["--source"], &[]) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    match load_source(&flags) {
        Ok(p) => {
            println!("{}", p.to_pseudo_c());
            println!("; {} PNLs", p.perfect_nests().len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn compile(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(
        args,
        &["--source", "--arch", "--arch-file", "--mode", "--predictor"],
        &["--emit-contexts"],
    ) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let result = (|| -> Result<(), String> {
        let program = load_source(&flags)?;
        let arch = load_arch(&flags)?;
        let mode = match flags.get("--mode").unwrap_or("performance") {
            "performance" => RankMode::Performance,
            "pareto" => RankMode::Pareto,
            other => return Err(format!("unknown mode {other}")),
        };
        let predictor: Box<dyn IiPredictor + Send + Sync> =
            match flags.get("--predictor").unwrap_or("analytical") {
                "analytical" => Box::new(AnalyticalPredictor),
                "oracle" => Box::new(OraclePredictor::default()),
                other => return Err(format!("unknown predictor {other}")),
            };
        let config = PtMapConfig {
            mode,
            ..PtMapConfig::default()
        };
        let ptmap = PtMap::new(predictor, config);
        let report = ptmap.compile(&program, &arch).map_err(|e| e.to_string())?;
        println!("{report}");
        if flags.has("--emit-contexts") {
            // Re-map the identity nests to show concrete context images
            // for each PNL of the *original* program (the chosen
            // transformed contexts are embedded in the report's PNLs).
            for (i, nest) in program.perfect_nests().iter().enumerate() {
                let dfg = build_dfg(&program, nest, &[]).map_err(|e| e.to_string())?;
                let mapping =
                    map_dfg(&dfg, &arch, &MapperConfig::default()).map_err(|e| e.to_string())?;
                println!("; ---- PNL {i} (identity mapping) ----");
                println!("{}", generate_contexts(&dfg, &mapping, &arch));
            }
        }
        Ok(())
    })();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn batch(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(
        args,
        &[
            "--manifest",
            "--jobs",
            "--eval-workers",
            "--backend",
            "--speculate",
            "--cache-dir",
            "--metrics",
            "--out",
            "--deadline",
            "--job-timeout",
            "--max-retries",
            "--trace-dir",
            "--trace-sample",
            "--trace-slow-ms",
        ],
        &["--validate"],
    ) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    // Flag-combination errors are usage errors (exit 2), like any other
    // bad flag — catch them before the runtime closure (exit 1).
    if flags.get("--trace-dir").is_none()
        && (flags.get("--trace-sample").is_some() || flags.get("--trace-slow-ms").is_some())
    {
        return usage_error("--trace-sample / --trace-slow-ms require --trace-dir");
    }
    let result = (|| -> Result<bool, String> {
        let path = flags.get("--manifest").ok_or("missing --manifest FILE")?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let jobs = Manifest::from_json(&text)?.resolve()?;
        let workers = parse_count(flags.get("--jobs"), "--jobs")?;
        let eval_workers = parse_count(flags.get("--eval-workers"), "--eval-workers")?;
        let mut base = PtMapConfig {
            eval_workers,
            ..PtMapConfig::default()
        };
        // Run the mapping invariant validator on every accepted mapping.
        // Part of the cache key, so validated and unvalidated runs do
        // not share entries.
        base.mapper.validate = flags.has("--validate");
        // Mapper backend (heuristic / exact / portfolio). Also part of
        // the cache key: exact results never alias heuristic entries.
        if let Some(b) = parse_backend(flags.get("--backend"), "--backend")? {
            base.mapper.backend = b;
        }
        // Speculative II racing in the heuristic ladder. Deliberately
        // NOT part of the cache key: fixed-seed mappings are
        // bit-identical at any width, so cached entries stay shared
        // across widths.
        if let Some(sp) = parse_speculation(flags.get("--speculate"), "--speculate")? {
            base.mapper.speculation = sp;
        }
        let budget = match parse_seconds(flags.get("--deadline"), "--deadline")? {
            Some(d) => ptmap_governor::Budget::with_deadline(d),
            None => ptmap_governor::Budget::unlimited(),
        };
        let defaults = BatchConfig::default();
        let config = BatchConfig {
            workers,
            cache_dir: flags.get("--cache-dir").map(Into::into),
            base,
            job_timeout: parse_seconds(flags.get("--job-timeout"), "--job-timeout")?,
            budget,
            max_retries: match flags.get("--max-retries") {
                Some(t) => t.parse::<u32>().map_err(|_| {
                    format!("--max-retries must be a non-negative integer, got {t}")
                })?,
                None => defaults.max_retries,
            },
            trace: match flags.get("--trace-dir") {
                Some(dir) => Some(ptmap_pipeline::TraceSettings {
                    dir: Some(dir.into()),
                    sample: parse_sample(flags.get("--trace-sample"), "--trace-sample")?
                        .unwrap_or(1.0),
                    slow_ms: parse_ms(flags.get("--trace-slow-ms"), "--trace-slow-ms")?,
                }),
                None => None,
            },
            tap: None,
        };
        let batch = run_batch(&jobs, &config);
        for (o, m) in batch.outcomes.iter().zip(&batch.metrics.jobs) {
            match (&o.report, &o.error) {
                (Some(r), _) => println!(
                    "{:<24} {:>12} cycles  EDP {:>10.3e}  {:>6.2}s{}{}",
                    o.name,
                    r.cycles,
                    r.edp,
                    m.wall_seconds,
                    if o.cache_hit { "  [cached]" } else { "" },
                    match &o.degraded {
                        Some(d) => format!("  [degraded: {d}]"),
                        None => String::new(),
                    }
                ),
                (None, Some(e)) => println!("{:<24} FAILED: {e}", o.name),
                (None, None) => unreachable!("outcome without report or error"),
            }
        }
        println!(
            "{} jobs in {:.2}s ({} workers): {} cache hits, {} misses{}",
            batch.outcomes.len(),
            batch.metrics.wall_seconds,
            batch.metrics.workers,
            batch.metrics.cache_hits,
            batch.metrics.cache_misses,
            if batch.metrics.cache_quarantines > 0 {
                format!(", {} quarantined", batch.metrics.cache_quarantines)
            } else {
                String::new()
            }
        );
        if let Some(out) = flags.get("--out") {
            write_json(out, &batch.outcomes)?;
        }
        if let Some(out) = flags.get("--metrics") {
            write_json(out, &batch.metrics)?;
        }
        let failed: Vec<_> = batch
            .outcomes
            .iter()
            .filter(|o| o.report.is_none())
            .collect();
        if !failed.is_empty() {
            eprintln!("{} of {} jobs failed:", failed.len(), batch.outcomes.len());
            for o in &failed {
                eprintln!(
                    "  {:<24} class={:<18} retries={}{}  {}",
                    o.name,
                    o.error_class.as_deref().unwrap_or("unknown"),
                    o.retries,
                    match &o.degraded {
                        Some(d) => format!(" degraded={d}"),
                        None => String::new(),
                    },
                    o.error.as_deref().unwrap_or("")
                );
            }
        }
        Ok(failed.is_empty())
    })();
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(
        args,
        &[
            "--addr",
            "--workers",
            "--queue-cap",
            "--max-inflight",
            "--cache-dir",
            "--deadline",
            "--drain-timeout",
            "--max-retries",
            "--default-backend",
            "--speculate",
            "--trace-sample",
            "--trace-slow-ms",
            "--log-format",
            "--log-level",
            "--model-dir",
            "--train-threshold",
            "--shadow-window",
            "--promote-margin",
        ],
        &["--validate", "--learn"],
    ) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let config = match serve_config(&flags) {
        Ok(c) => c,
        Err(e) => return usage_error(&e),
    };
    let server = match ptmap_serve::Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: binding listener: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        // The boot line is the contract with supervisors and tests:
        // with `--addr ...:0` it is the only way to learn the port.
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("error: local addr: {e}");
            return ExitCode::FAILURE;
        }
    }
    ptmap_serve::signal::install_handlers();
    // Bind installed the process-wide event log; a panic should dump
    // the flight recorder before the backtrace.
    ptmap_trace::obs::install_panic_hook();
    let summary = server.run();
    ptmap_trace::obs::logger().info(
        "drained",
        None,
        if summary.clean { "" } else { "forced" },
        &[
            ("requests", summary.requests.into()),
            ("compiles", summary.compiles.into()),
            ("coalesced", summary.coalesced.into()),
            ("clean", summary.clean.into()),
        ],
    );
    ExitCode::SUCCESS
}

/// Builds the daemon configuration from `serve` flags.
fn serve_config(flags: &Flags) -> Result<ptmap_serve::ServeConfig, String> {
    let defaults = ptmap_serve::ServeConfig::default();
    let mut base = PtMapConfig::default();
    base.mapper.validate = flags.has("--validate");
    // Server-wide default quality tier; clients may override per
    // request with the `X-Ptmap-Quality` header.
    if let Some(b) = parse_backend(flags.get("--default-backend"), "--default-backend")? {
        base.mapper.backend = b;
    }
    // Server-wide speculative II racing width. Not request-addressable
    // (and not serialized), so it can never fragment the report cache
    // or split coalesced flights.
    if let Some(sp) = parse_speculation(flags.get("--speculate"), "--speculate")? {
        base.mapper.speculation = sp;
    }
    Ok(ptmap_serve::ServeConfig {
        addr: flags
            .get("--addr")
            .unwrap_or(defaults.addr.as_str())
            .to_string(),
        workers: match flags.get("--workers") {
            Some(_) => parse_count(flags.get("--workers"), "--workers")?,
            None => defaults.workers,
        },
        queue_cap: match flags.get("--queue-cap") {
            Some(_) => parse_count(flags.get("--queue-cap"), "--queue-cap")?,
            None => defaults.queue_cap,
        },
        max_inflight: match flags.get("--max-inflight") {
            Some(_) => parse_count(flags.get("--max-inflight"), "--max-inflight")?,
            None => defaults.max_inflight,
        },
        cache_dir: flags.get("--cache-dir").map(Into::into),
        base,
        max_retries: match flags.get("--max-retries") {
            Some(t) => t
                .parse::<u32>()
                .map_err(|_| format!("--max-retries must be a non-negative integer, got {t}"))?,
            None => defaults.max_retries,
        },
        default_timeout: parse_seconds(flags.get("--deadline"), "--deadline")?
            .unwrap_or(defaults.default_timeout),
        drain_timeout: parse_seconds(flags.get("--drain-timeout"), "--drain-timeout")?
            .unwrap_or(defaults.drain_timeout),
        trace_sample: parse_sample(flags.get("--trace-sample"), "--trace-sample")?
            .unwrap_or(defaults.trace_sample),
        trace_slow_ms: parse_ms(flags.get("--trace-slow-ms"), "--trace-slow-ms")?,
        learn: learn_config(flags)?,
        log_level: parse_log_level(flags.get("--log-level"))?,
        log_format: parse_log_format(flags.get("--log-format"))?,
    })
}

/// Builds the online-learning configuration from `serve` flags; `None`
/// without `--learn`. Learning sub-flags given without `--learn` are
/// usage errors — a typo must not silently disable the subsystem the
/// operator tried to tune.
fn learn_config(flags: &Flags) -> Result<Option<ptmap_learn::LearnConfig>, String> {
    if !flags.has("--learn") {
        for sub in [
            "--model-dir",
            "--train-threshold",
            "--shadow-window",
            "--promote-margin",
        ] {
            if flags.get(sub).is_some() {
                return Err(format!("{sub} requires --learn"));
            }
        }
        return Ok(None);
    }
    let defaults = ptmap_learn::LearnConfig::default();
    Ok(Some(ptmap_learn::LearnConfig {
        model_dir: flags.get("--model-dir").map(Into::into),
        train_threshold: match flags.get("--train-threshold") {
            Some(_) => parse_count(flags.get("--train-threshold"), "--train-threshold")?,
            None => defaults.train_threshold,
        },
        shadow_window: match flags.get("--shadow-window") {
            Some(_) => parse_count(flags.get("--shadow-window"), "--shadow-window")?,
            None => defaults.shadow_window,
        },
        promote_margin: match flags.get("--promote-margin") {
            Some(t) => match t.parse::<f64>() {
                Ok(m) if (0.0..1.0).contains(&m) => m,
                _ => {
                    return Err(format!(
                        "--promote-margin must be a fraction in [0, 1), got {t}"
                    ))
                }
            },
            None => defaults.promote_margin,
        },
        ..defaults
    }))
}

fn gateway(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(
        args,
        &[
            "--addr",
            "--peers",
            "--probe-interval-ms",
            "--failure-threshold",
            "--cooldown-ms",
            "--max-retries",
            "--backoff-ms",
            "--hedge-after-ms",
            "--cache-dir",
            "--deadline",
            "--drain-timeout",
            "--default-backend",
            "--speculate",
            "--trace-dir",
            "--log-format",
            "--log-level",
        ],
        &["--validate"],
    ) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let config = match gateway_config(&flags) {
        Ok(c) => c,
        Err(e) => return usage_error(&e),
    };
    let gateway = match ptmap_serve::Gateway::bind(config) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: binding listener: {e}");
            return ExitCode::FAILURE;
        }
    };
    match gateway.local_addr() {
        // Same boot-line contract as `serve`: with `--addr ...:0` this
        // line is the only way to learn the port.
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("error: local addr: {e}");
            return ExitCode::FAILURE;
        }
    }
    ptmap_serve::signal::install_handlers();
    ptmap_trace::obs::install_panic_hook();
    let summary = gateway.run();
    ptmap_trace::obs::logger().info(
        "drained",
        None,
        if summary.clean { "" } else { "forced" },
        &[
            ("requests", summary.requests.into()),
            ("forwards", summary.forwards.into()),
            ("retries", summary.retries.into()),
            ("hedges", summary.hedges.into()),
            ("requeued", summary.requeued.into()),
            ("clean", summary.clean.into()),
        ],
    );
    ExitCode::SUCCESS
}

/// Builds the gateway configuration from `gateway` flags.
fn gateway_config(flags: &Flags) -> Result<ptmap_serve::GatewayConfig, String> {
    let defaults = ptmap_serve::GatewayConfig::default();
    let mut peers: Vec<String> = Vec::new();
    for entry in flags
        .get("--peers")
        .ok_or("missing --peers HOST:PORT,...")?
        .split(',')
    {
        let entry = entry.trim();
        if entry.is_empty() {
            return Err("--peers has an empty entry (double comma?)".to_string());
        }
        peers.push(entry.to_string());
    }
    if peers.is_empty() {
        return Err("--peers needs at least one HOST:PORT".to_string());
    }
    // The base config exists only to compute request keys; it must
    // match the peers' flags or routing and their caches disagree.
    let mut base = PtMapConfig::default();
    base.mapper.validate = flags.has("--validate");
    if let Some(b) = parse_backend(flags.get("--default-backend"), "--default-backend")? {
        base.mapper.backend = b;
    }
    if let Some(sp) = parse_speculation(flags.get("--speculate"), "--speculate")? {
        base.mapper.speculation = sp;
    }
    Ok(ptmap_serve::GatewayConfig {
        addr: flags
            .get("--addr")
            .unwrap_or(defaults.addr.as_str())
            .to_string(),
        peers,
        probe_interval: parse_ms(flags.get("--probe-interval-ms"), "--probe-interval-ms")?
            .map(std::time::Duration::from_millis)
            .unwrap_or(defaults.probe_interval),
        failure_threshold: match flags.get("--failure-threshold") {
            Some(t) => t.parse::<u32>().ok().filter(|n| *n >= 1).ok_or_else(|| {
                format!("--failure-threshold must be a positive integer, got {t}")
            })?,
            None => defaults.failure_threshold,
        },
        cooldown: parse_ms(flags.get("--cooldown-ms"), "--cooldown-ms")?
            .map(std::time::Duration::from_millis)
            .unwrap_or(defaults.cooldown),
        max_retries: match flags.get("--max-retries") {
            Some(t) => t
                .parse::<u32>()
                .map_err(|_| format!("--max-retries must be a non-negative integer, got {t}"))?,
            None => defaults.max_retries,
        },
        backoff_base: parse_ms(flags.get("--backoff-ms"), "--backoff-ms")?
            .map(std::time::Duration::from_millis)
            .unwrap_or(defaults.backoff_base),
        hedge_after: parse_ms(flags.get("--hedge-after-ms"), "--hedge-after-ms")?
            .map(std::time::Duration::from_millis),
        cache_dir: flags.get("--cache-dir").map(Into::into),
        base,
        default_timeout: parse_seconds(flags.get("--deadline"), "--deadline")?
            .unwrap_or(defaults.default_timeout),
        drain_timeout: parse_seconds(flags.get("--drain-timeout"), "--drain-timeout")?
            .unwrap_or(defaults.drain_timeout),
        trace_dir: flags.get("--trace-dir").map(Into::into),
        log_level: parse_log_level(flags.get("--log-level"))?,
        log_format: parse_log_format(flags.get("--log-format"))?,
    })
}

fn loadtest(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(
        args,
        &[
            "--target",
            "--workers",
            "--requests",
            "--seed",
            "--distinct",
            "--deadline-ms",
            "--log-format",
            "--log-level",
        ],
        &[],
    ) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let config = match loadtest_config(&flags) {
        Ok(c) => c,
        Err(e) => return usage_error(&e),
    };
    let (level, format) = match (
        parse_log_level(flags.get("--log-level")),
        parse_log_format(flags.get("--log-format")),
    ) {
        (Ok(l), Ok(f)) => (l, f),
        (Err(e), _) | (_, Err(e)) => return usage_error(&e),
    };
    ptmap_trace::obs::install(std::sync::Arc::new(ptmap_trace::obs::EventLog::new(
        "loadtest", level, format,
    )));
    ptmap_trace::obs::install_panic_hook();
    let report = ptmap_serve::run_loadtest(&config);
    print!("{}", report.render());
    // Exit status is the verdict: any failed request fails the run, so
    // CI can assert "zero dropped requests" without parsing output.
    if report.failed() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Builds the loadtest configuration from `loadtest` flags.
fn loadtest_config(flags: &Flags) -> Result<ptmap_serve::LoadtestConfig, String> {
    let defaults = ptmap_serve::LoadtestConfig::default();
    let parse_u64 = |flag: &str, default: u64| -> Result<u64, String> {
        match flags.get(flag) {
            None => Ok(default),
            Some(t) => t
                .parse::<u64>()
                .map_err(|_| format!("{flag} must be a non-negative integer, got {t}")),
        }
    };
    Ok(ptmap_serve::LoadtestConfig {
        target: flags
            .get("--target")
            .unwrap_or(defaults.target.as_str())
            .to_string(),
        workers: match flags.get("--workers") {
            Some(_) => parse_count(flags.get("--workers"), "--workers")?,
            None => defaults.workers,
        },
        requests: parse_u64("--requests", defaults.requests)?,
        seed: parse_u64("--seed", defaults.seed)?,
        distinct: parse_u64("--distinct", defaults.distinct)?.max(1),
        deadline_ms: match flags.get("--deadline-ms") {
            Some(_) => parse_ms(flags.get("--deadline-ms"), "--deadline-ms")?,
            None => defaults.deadline_ms,
        },
    })
}

/// Parses an optional mapper-backend flag
/// (`heuristic` / `exact` / `portfolio`).
fn parse_backend(
    text: Option<&str>,
    flag: &str,
) -> Result<Option<ptmap_mapper::BackendKind>, String> {
    match text {
        None => Ok(None),
        Some(t) => t.parse().map(Some).map_err(|e| format!("{flag}: {e}")),
    }
}

/// Parses an optional speculation flag (`off` / `auto` / a wave width).
fn parse_speculation(
    text: Option<&str>,
    flag: &str,
) -> Result<Option<ptmap_mapper::Speculation>, String> {
    match text {
        None => Ok(None),
        Some(t) => t.parse().map(Some).map_err(|e| format!("{flag}: {e}")),
    }
}

/// Parses an optional `--log-level` flag (`debug|info|warn|error`).
fn parse_log_level(text: Option<&str>) -> Result<ptmap_trace::obs::Level, String> {
    match text {
        None => Ok(ptmap_trace::obs::Level::Info),
        Some(t) => ptmap_trace::obs::Level::parse(t)
            .ok_or_else(|| format!("--log-level must be debug|info|warn|error, got {t}")),
    }
}

/// Parses an optional `--log-format` flag (`text|json`).
fn parse_log_format(text: Option<&str>) -> Result<ptmap_trace::obs::LogFormat, String> {
    match text {
        None => Ok(ptmap_trace::obs::LogFormat::Text),
        Some(t) => ptmap_trace::obs::LogFormat::parse(t)
            .ok_or_else(|| format!("--log-format must be text or json, got {t}")),
    }
}

/// Parses an optional sampling probability flag in `[0, 1]`.
fn parse_sample(text: Option<&str>, flag: &str) -> Result<Option<f64>, String> {
    match text {
        None => Ok(None),
        Some(t) => match t.parse::<f64>() {
            Ok(p) if (0.0..=1.0).contains(&p) => Ok(Some(p)),
            _ => Err(format!("{flag} must be a probability in [0, 1], got {t}")),
        },
    }
}

/// Parses an optional non-negative millisecond flag (`0` means "keep
/// every trace", a handy override in smoke tests).
fn parse_ms(text: Option<&str>, flag: &str) -> Result<Option<u64>, String> {
    match text {
        None => Ok(None),
        Some(t) => match t.parse::<u64>() {
            Ok(ms) => Ok(Some(ms)),
            Err(_) => Err(format!(
                "{flag} must be a non-negative integer of milliseconds, got {t}"
            )),
        },
    }
}

fn parse_count(text: Option<&str>, flag: &str) -> Result<usize, String> {
    match text {
        None => Ok(1),
        Some(t) => match t.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("{flag} must be a positive integer, got {t}")),
        },
    }
}

/// Parses an optional duration flag given in (possibly fractional)
/// seconds.
fn parse_seconds(text: Option<&str>, flag: &str) -> Result<Option<std::time::Duration>, String> {
    match text {
        None => Ok(None),
        Some(t) => match t.parse::<f64>() {
            Ok(s) if s > 0.0 && s.is_finite() => Ok(Some(std::time::Duration::from_secs_f64(s))),
            _ => Err(format!(
                "{flag} must be a positive number of seconds, got {t}"
            )),
        },
    }
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), String> {
    let text = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))
}
