//! SIGTERM / SIGINT → graceful-drain flag.
//!
//! The daemon needs exactly one bit from the OS: "stop accepting and
//! drain". A full signal-handling dependency would be the only non-std
//! crate in the workspace, so instead we declare libc's `signal(2)`
//! directly (it is in every libc the workspace builds against) and do
//! nothing in the handler but store into an `AtomicBool` — the one
//! operation that is unconditionally async-signal-safe. The accept
//! loop polls the flag between `accept` attempts.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler (or [`request_shutdown`]); polled by the
/// accept loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)`. Returns the previous handler (opaque here).
        pub fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub extern "C" fn handle(_signum: i32) {
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::Release);
    }
}

/// Installs the SIGINT/SIGTERM handlers (no-op off unix — tests there
/// use [`request_shutdown`]).
pub fn install_handlers() {
    #[cfg(unix)]
    unsafe {
        sys::signal(sys::SIGINT, sys::handle);
        sys::signal(sys::SIGTERM, sys::handle);
    }
}

/// Requests shutdown from inside the process (equivalent to receiving
/// SIGTERM); used by tests and the server's own drain path.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Release);
}

/// Whether a shutdown has been requested.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

/// Clears the flag (test isolation only: the flag is process-global).
pub fn reset_for_test() {
    SHUTDOWN.store(false, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_flag() {
        reset_for_test();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_test();
    }
}
