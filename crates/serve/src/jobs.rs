//! The async job queue behind `POST /jobs` + `GET /jobs/<id>`.
//!
//! A bounded FIFO of unresolved job specs plus a status table. Worker
//! threads block on [`JobTable::next`]; submission beyond the bound is
//! refused with a structured 503 (admission control — the queue is the
//! only buffer, so memory stays bounded no matter the arrival rate).
//! Closing the table ([`JobTable::close`]) makes `next` drain the
//! remaining queue and then return `None`, which is how workers learn
//! a graceful shutdown has begun.

use crate::lock_unpoisoned;
use ptmap_pipeline::{JobOutcome, JobSpec};
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Completed-status retention: oldest done entries beyond this are
/// evicted so a long-lived daemon's status table stays bounded.
const DONE_RETENTION: usize = 4096;

/// Where an async job is in its lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// A worker is compiling it.
    Running,
    /// Finished (successfully or not — see the outcome).
    Done(Box<JobOutcome>),
}

impl JobState {
    /// The state's wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity.
    Full,
    /// The server is draining and accepts no new work.
    Draining,
}

/// A queued submission handed to a worker.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// The id returned to the submitter.
    pub id: u64,
    /// The unresolved spec (resolution happens on the worker).
    pub spec: JobSpec,
}

#[derive(Debug, Default)]
struct Inner {
    queue: VecDeque<QueuedJob>,
    states: HashMap<u64, JobState>,
    done_order: VecDeque<u64>,
    next_id: u64,
    accepting: bool,
}

/// The bounded queue + status table.
#[derive(Debug)]
pub struct JobTable {
    inner: Mutex<Inner>,
    cv: Condvar,
    cap: usize,
}

impl JobTable {
    /// A table accepting at most `cap` queued (not yet running) jobs.
    pub fn new(cap: usize) -> JobTable {
        JobTable {
            inner: Mutex::new(Inner {
                accepting: true,
                ..Inner::default()
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues a spec, returning its id.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        let mut inner = lock_unpoisoned(&self.inner);
        if !inner.accepting {
            return Err(SubmitError::Draining);
        }
        if inner.queue.len() >= self.cap {
            return Err(SubmitError::Full);
        }
        inner.next_id += 1;
        let id = inner.next_id;
        inner.queue.push_back(QueuedJob { id, spec });
        inner.states.insert(id, JobState::Queued);
        self.cv.notify_one();
        Ok(id)
    }

    /// Blocks until a job is available (marking it running) or the
    /// table is closed *and* drained, which returns `None`.
    pub fn next(&self) -> Option<QueuedJob> {
        let mut inner = lock_unpoisoned(&self.inner);
        loop {
            if let Some(job) = inner.queue.pop_front() {
                inner.states.insert(job.id, JobState::Running);
                return Some(job);
            }
            if !inner.accepting {
                return None;
            }
            inner = self
                .cv
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Publishes a finished outcome (evicting the oldest done entries
    /// beyond the retention bound).
    pub fn finish(&self, id: u64, outcome: JobOutcome) {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.states.insert(id, JobState::Done(Box::new(outcome)));
        inner.done_order.push_back(id);
        while inner.done_order.len() > DONE_RETENTION {
            if let Some(old) = inner.done_order.pop_front() {
                inner.states.remove(&old);
            }
        }
        self.cv.notify_all();
    }

    /// The current state of a job id.
    pub fn status(&self, id: u64) -> Option<JobState> {
        lock_unpoisoned(&self.inner).states.get(&id).cloned()
    }

    /// Jobs waiting in the queue.
    pub fn depth(&self) -> usize {
        lock_unpoisoned(&self.inner).queue.len()
    }

    /// Jobs queued or running (drain waits for this to hit zero).
    pub fn active(&self) -> usize {
        let inner = lock_unpoisoned(&self.inner);
        inner.queue.len()
            + inner
                .states
                .values()
                .filter(|s| matches!(s, JobState::Running))
                .count()
    }

    /// Stops accepting submissions and wakes every parked worker so the
    /// remaining queue drains.
    pub fn close(&self) {
        lock_unpoisoned(&self.inner).accepting = false;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kernel: &str) -> JobSpec {
        JobSpec {
            name: None,
            kernel: kernel.to_string(),
            arch: "S4".to_string(),
            predictor: None,
            mode: None,
        }
    }

    fn outcome(name: &str) -> JobOutcome {
        JobOutcome {
            name: name.to_string(),
            cache_hit: false,
            report: None,
            error: Some("x".into()),
            error_class: Some("error".into()),
            degraded: None,
            retries: 0,
            trace_id: None,
        }
    }

    #[test]
    fn fifo_and_state_transitions() {
        let t = JobTable::new(8);
        let a = t.submit(spec("gemm:16")).unwrap();
        let b = t.submit(spec("gemm:20")).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.status(a), Some(JobState::Queued));

        let first = t.next().unwrap();
        assert_eq!(first.id, a, "FIFO order");
        assert_eq!(t.status(a), Some(JobState::Running));
        assert_eq!(t.active(), 2, "one queued + one running");

        t.finish(a, outcome("done-a"));
        match t.status(a) {
            Some(JobState::Done(o)) => assert_eq!(o.name, "done-a"),
            other => panic!("{other:?}"),
        }
        assert_eq!(t.active(), 1);
        assert_eq!(t.status(999), None);
    }

    #[test]
    fn bounded_queue_refuses_overflow() {
        let t = JobTable::new(2);
        t.submit(spec("a")).unwrap();
        t.submit(spec("b")).unwrap();
        assert_eq!(t.submit(spec("c")), Err(SubmitError::Full));
        // Popping frees a slot.
        let _ = t.next().unwrap();
        assert!(t.submit(spec("c")).is_ok());
    }

    #[test]
    fn close_drains_then_stops_workers() {
        let t = std::sync::Arc::new(JobTable::new(4));
        t.submit(spec("a")).unwrap();
        t.close();
        assert_eq!(t.submit(spec("b")), Err(SubmitError::Draining));
        // The queued job is still handed out, then workers get None.
        assert!(t.next().is_some());
        assert!(t.next().is_none());

        // A parked worker wakes on close.
        let t2 = std::sync::Arc::new(JobTable::new(4));
        let worker = {
            let t2 = std::sync::Arc::clone(&t2);
            std::thread::spawn(move || t2.next())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        t2.close();
        assert!(worker.join().unwrap().is_none());
    }

    #[test]
    fn done_retention_evicts_oldest() {
        let t = JobTable::new(1);
        let mut first = None;
        for i in 0..(DONE_RETENTION + 10) {
            let id = t.submit(spec("k")).unwrap();
            if i == 0 {
                first = Some(id);
            }
            let _ = t.next().unwrap();
            t.finish(id, outcome("o"));
        }
        assert_eq!(t.status(first.unwrap()), None, "oldest entry evicted");
    }
}
