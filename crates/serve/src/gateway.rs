//! The sharding gateway: one HTTP front for a cluster of daemons.
//!
//! `ptmap gateway` binds a [`Server`](crate::Server)-shaped accept loop
//! but compiles nothing itself. Every `POST /compile` / `POST /jobs` is
//! routed by its pipeline [`request_key`] over a consistent-hash
//! [`HashRing`] of backend daemons, so one kernel always lands on the
//! same peer and that peer's report cache stays hot. Around that core
//! routing decision the gateway layers the cluster's failure handling:
//!
//! * **Health-checked ejection** — a prober thread hits each peer's
//!   `/healthz` every `probe_interval`; a run of failures opens that
//!   peer's [`Breaker`] and replica selection skips it until a cooldown
//!   passes and a half-open probe succeeds. Ring membership never
//!   changes, so a recovered peer gets its keys (and cache) back.
//! * **Retry with backoff** — connect/transport failures and peer
//!   `503`s reshard to the next replica in the key's failover sequence
//!   after an exponential backoff with deterministic jitter, all under
//!   the request's governor [`Budget`]; the deadline bounds the whole
//!   forward including every retry.
//! * **Deadline & trace propagation** — every hop re-derives
//!   `X-Ptmap-Deadline-Ms` from the *remaining* budget and carries the
//!   client's `X-Ptmap-Trace-Id` through, so a trace spans the cluster.
//! * **Hedged requests** — optionally, a sync compile still unanswered
//!   after `hedge_after` starts a second forward against the next
//!   replica; first response wins.
//! * **Shared cache tier** — with `--cache-dir`, a compile whose key is
//!   already in the gateway's [`ReportCache`] is answered locally;
//!   forwarded successes populate it.
//! * **Async job continuity** — the gateway keeps each submitted job's
//!   raw spec; polling a job whose owner died resubmits it to the next
//!   live replica instead of surfacing the loss.
//!
//! `GET /metrics` serves the gateway's own series plus a cluster
//! rollup scraped from live peers; `GET /cluster` is the membership
//! introspection endpoint.

use crate::client::{self, ClientError, PeerResponse};
use crate::http::{read_request, write_response, HttpError, Request, Response};
use crate::metrics::{render_http_sections, ServiceMetrics};
use crate::server::{error_outcome, outcome_status};
use crate::shard::{hash64, Breaker, BreakerState, HashRing};
use crate::traces::TraceStore;
use crate::{lock_unpoisoned, signal};
use ptmap_core::PtMapConfig;
use ptmap_governor::faultpoint::{fail_point, sites, with_scope};
use ptmap_governor::Budget;
use ptmap_mapper::BackendKind;
use ptmap_pipeline::{request_key, Job, JobOutcome, JobSpec, ReportCache};
use ptmap_trace::obs::{EventLog, Level, LogFormat};
use ptmap_trace::{
    chrome_trace_json, next_trace_id, stitch, AttrValue, Span, Trace, Tracer, FORWARD_SPAN,
    WINNER_ATTR,
};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Deadline for one health probe or metrics scrape of a peer.
const PROBE_DEADLINE: Duration = Duration::from_millis(750);
/// Deadline for forwarding one async-job poll.
const POLL_DEADLINE: Duration = Duration::from_secs(10);

/// How the gateway is configured (flags + defaults).
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address (port `0` = ephemeral; printed on boot).
    pub addr: String,
    /// Backend daemon addresses (`host:port`). The ring is built over
    /// the deduplicated set.
    pub peers: Vec<String>,
    /// Health-probe period per peer.
    pub probe_interval: Duration,
    /// Consecutive failures that open a peer's breaker.
    pub failure_threshold: u32,
    /// How long an open breaker waits before a half-open probe.
    pub cooldown: Duration,
    /// Extra forward attempts after the first (resharded to the next
    /// replica each time).
    pub max_retries: u32,
    /// First backoff step; doubles per retry, plus deterministic
    /// jitter.
    pub backoff_base: Duration,
    /// Start a second (hedged) forward for a sync compile still
    /// unanswered after this long. `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Shared report-cache directory consulted before forwarding
    /// (`None` = no gateway cache tier).
    pub cache_dir: Option<PathBuf>,
    /// Base compiler configuration — must match the peers' so request
    /// keys (and therefore routing and cache identity) agree.
    pub base: PtMapConfig,
    /// Per-request deadline when the client sends none; also the cap
    /// on client-supplied `X-Ptmap-Deadline-Ms`.
    pub default_timeout: Duration,
    /// How long drain waits for in-flight forwards.
    pub drain_timeout: Duration,
    /// Directory where stitched cluster traces for sync compiles are
    /// exported as `<trace-id>.json` Chrome trace-event documents
    /// (`None` = no export; `GET /jobs/<id>/trace` still works).
    pub trace_dir: Option<PathBuf>,
    /// Minimum severity the structured event log records.
    pub log_level: Level,
    /// How event-log lines are rendered on stderr (the `/debug/events`
    /// flight recorder always keeps JSON).
    pub log_format: LogFormat,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:7190".to_string(),
            peers: Vec::new(),
            probe_interval: Duration::from_millis(500),
            failure_threshold: 3,
            cooldown: Duration::from_secs(2),
            max_retries: 3,
            backoff_base: Duration::from_millis(25),
            hedge_after: None,
            cache_dir: None,
            base: PtMapConfig::default(),
            default_timeout: Duration::from_secs(300),
            drain_timeout: Duration::from_secs(20),
            trace_dir: None,
            log_level: Level::Info,
            log_format: LogFormat::Text,
        }
    }
}

/// What the gateway reported when it exited.
#[derive(Debug, Clone)]
pub struct GatewaySummary {
    /// Requests handled over the gateway's lifetime.
    pub requests: u64,
    /// Forward attempts dispatched to peers.
    pub forwards: u64,
    /// Forward attempts that were retries.
    pub retries: u64,
    /// Hedged forwards started.
    pub hedges: u64,
    /// Async jobs resubmitted after their owner died.
    pub requeued: u64,
    /// Whether everything in flight finished inside the drain timeout.
    pub clean: bool,
}

/// Live per-peer state: identity, breaker, and counters.
struct Peer {
    addr: String,
    breaker: Mutex<Breaker>,
    /// Forward attempts that reached a parsed HTTP response.
    forwards: AtomicU64,
    /// Forward attempts that failed in transport.
    failures: AtomicU64,
    probes_ok: AtomicU64,
    probes_failed: AtomicU64,
}

/// One tracked async job: enough to poll its owner and to resubmit it
/// elsewhere if the owner dies.
#[derive(Clone)]
struct GwJob {
    /// The raw spec body as submitted (replayed verbatim on requeue).
    body: Vec<u8>,
    /// The client's `X-Ptmap-Quality`, re-propagated on requeue.
    quality: Option<String>,
    /// Routing key (pipeline request key).
    key: String,
    /// Index of the owning peer.
    peer: usize,
    /// The job id the owning peer assigned.
    remote_id: u64,
    /// The final poll body (id already rewritten), retained so a
    /// finished job survives its owner dying afterwards.
    done: Option<String>,
    /// The gateway-side root span for the job's whole tracked
    /// lifetime. Requeue/poll activity nests under it; it stays open
    /// until the trace is snapshotted at completion (an open root
    /// exports clamped to the trace wall time).
    span: Arc<Span>,
}

impl GwJob {
    /// The job's gateway trace handle (scoped to its root span).
    fn tracer(&self) -> &Tracer {
        self.span.tracer()
    }
}

/// Everything the gateway's handler threads share.
struct GatewayState {
    config: GatewayConfig,
    ring: HashRing,
    peers: Vec<Peer>,
    cache: Option<ReportCache>,
    metrics: ServiceMetrics,
    /// Finished gateway-side span trees, ready for stitching.
    traces: TraceStore,
    /// Structured event log; also the `/debug/events` flight recorder.
    log: Arc<EventLog>,
    /// (peer index, new state name) → transition count.
    transitions: Mutex<BTreeMap<(usize, &'static str), u64>>,
    /// Gateway job id → tracked job.
    jobs: Mutex<BTreeMap<u64, GwJob>>,
    next_job_id: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    requeued: AtomicU64,
    shared_cache_hits: AtomicU64,
    root: Budget,
    stop: AtomicBool,
    draining: AtomicBool,
    conns: Mutex<usize>,
    conns_cv: Condvar,
    requests: AtomicU64,
}

impl GatewayState {
    /// Records a breaker transition for `/metrics`, `/cluster`, and
    /// the event log.
    fn note_transition(&self, peer: usize, change: Option<(BreakerState, BreakerState)>) {
        if let Some((from, to)) = change {
            *lock_unpoisoned(&self.transitions)
                .entry((peer, to.name()))
                .or_default() += 1;
            self.log.info(
                "breaker_transition",
                None,
                "",
                &[
                    ("peer", AttrValue::Str(self.peers[peer].addr.clone())),
                    ("from", from.name().into()),
                    ("to", to.name().into()),
                ],
            );
        }
    }

    /// Peer indices whose breaker admits traffic right now.
    fn available_peers(&self) -> Vec<usize> {
        let now = Instant::now();
        (0..self.peers.len())
            .filter(|i| lock_unpoisoned(&self.peers[*i].breaker).admits(now))
            .collect()
    }

    /// The failover sequence for `key`, rotated by `offset`, with
    /// breaker-ejected peers moved to the back (they are still tried
    /// last rather than never — a fully ejected cluster beats an
    /// instant failure).
    fn candidates(&self, key: &str, offset: usize) -> Vec<usize> {
        let order = self.ring.replicas(key);
        if order.is_empty() {
            return order;
        }
        let rotated: Vec<usize> = (0..order.len())
            .map(|i| order[(offset + i) % order.len()])
            .collect();
        let now = Instant::now();
        let (open, shut): (Vec<usize>, Vec<usize>) = rotated
            .into_iter()
            .partition(|i| lock_unpoisoned(&self.peers[*i].breaker).admits(now));
        open.into_iter().chain(shut).collect()
    }
}

/// A shutdown/introspection handle (tests and the binary's wiring).
#[derive(Clone)]
pub struct GatewayHandle {
    state: Arc<GatewayState>,
}

impl GatewayHandle {
    /// Requests a graceful drain, as if SIGTERM arrived.
    pub fn shutdown(&self) {
        self.state.stop.store(true, Ordering::Release);
    }

    /// Rendered `/metrics` document without the cluster rollup (test
    /// convenience; no network).
    pub fn metrics_text(&self) -> String {
        render_gateway_metrics(&self.state, false)
    }
}

/// The bound, not-yet-running gateway.
pub struct Gateway {
    listener: TcpListener,
    state: Arc<GatewayState>,
}

/// Decrements the open-connection count when a handler exits.
struct ConnGuard {
    state: Arc<GatewayState>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let mut conns = lock_unpoisoned(&self.state.conns);
        *conns = conns.saturating_sub(1);
        self.state.conns_cv.notify_all();
    }
}

impl Gateway {
    /// Binds the listener and builds the ring. Fails if no peers were
    /// given — a gateway with nothing behind it can only say 503.
    pub fn bind(config: GatewayConfig) -> std::io::Result<Gateway> {
        if config.peers.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "gateway needs at least one --peer",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        // Pin the start-time gauge's value before serving anything.
        crate::metrics::process_start_seconds();
        let log = Arc::new(EventLog::new(
            "gateway",
            config.log_level,
            config.log_format,
        ));
        ptmap_trace::obs::install(Arc::clone(&log));
        let ring = HashRing::new(&config.peers);
        let peers = ring
            .peers()
            .iter()
            .map(|addr| Peer {
                addr: addr.clone(),
                breaker: Mutex::new(Breaker::new(config.failure_threshold, config.cooldown)),
                forwards: AtomicU64::new(0),
                failures: AtomicU64::new(0),
                probes_ok: AtomicU64::new(0),
                probes_failed: AtomicU64::new(0),
            })
            .collect();
        let cache = config.cache_dir.as_ref().map(|dir| {
            ReportCache::with_dir(dir).unwrap_or_else(|e| {
                log.warn(
                    "cache_dir_fallback",
                    None,
                    &format!("cache dir {}: {e}; falling back to memory", dir.display()),
                    &[("dir", AttrValue::Str(dir.display().to_string()))],
                );
                ReportCache::in_memory()
            })
        });
        let state = Arc::new(GatewayState {
            ring,
            peers,
            cache,
            metrics: ServiceMetrics::new(),
            traces: TraceStore::new(),
            log,
            transitions: Mutex::new(BTreeMap::new()),
            jobs: Mutex::new(BTreeMap::new()),
            next_job_id: AtomicU64::new(1),
            retries: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
            shared_cache_hits: AtomicU64::new(0),
            root: Budget::cancellable(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            conns: Mutex::new(0),
            conns_cv: Condvar::new(),
            requests: AtomicU64::new(0),
            config,
        });
        Ok(Gateway { listener, state })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown/introspection handle usable from another thread.
    pub fn handle(&self) -> GatewayHandle {
        GatewayHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until SIGTERM/SIGINT (or [`GatewayHandle::shutdown`]),
    /// then drains and returns the lifetime summary.
    pub fn run(self) -> GatewaySummary {
        let state = Arc::clone(&self.state);

        // The health prober drives breaker transitions even when no
        // traffic is flowing, so recovery does not wait for a victim
        // request.
        let prober = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("ptmap-probe".to_string())
                .spawn(move || {
                    while !state.stop.load(Ordering::Acquire) && !signal::shutdown_requested() {
                        for idx in 0..state.peers.len() {
                            probe_peer(&state, idx);
                        }
                        std::thread::sleep(state.config.probe_interval);
                    }
                })
                .expect("spawn prober")
        };

        loop {
            if state.stop.load(Ordering::Acquire) || signal::shutdown_requested() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    *lock_unpoisoned(&state.conns) += 1;
                    let state = Arc::clone(&state);
                    let _ = std::thread::Builder::new()
                        .name("ptmap-gw-conn".to_string())
                        .spawn(move || {
                            let _guard = ConnGuard {
                                state: Arc::clone(&state),
                            };
                            handle_connection(&state, stream);
                        });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    state.log.warn(
                        "accept_error",
                        None,
                        &format!("accept: {e}; continuing"),
                        &[],
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }

        // Drain: stop accepting, let in-flight forwards finish, then
        // cancel stragglers through the root budget.
        drop(self.listener);
        state.draining.store(true, Ordering::Release);
        let deadline = Instant::now() + state.config.drain_timeout;
        let mut clean = wait_idle(&state, deadline);
        if !clean {
            state.log.warn(
                "drain_timeout",
                None,
                "drain timeout elapsed; cancelling in-flight forwards",
                &[("timeout_s", state.config.drain_timeout.as_secs().into())],
            );
            state.root.cancel();
            clean = wait_idle(&state, Instant::now() + Duration::from_secs(10));
        }
        let _ = prober.join();

        for (endpoint, count, p50, p95, p99) in state.metrics.latency_quantiles() {
            state.log.info(
                "latency",
                None,
                "",
                &[
                    ("endpoint", AttrValue::Str(endpoint)),
                    ("count", count.into()),
                    ("p50_s", p50.into()),
                    ("p95_s", p95.into()),
                    ("p99_s", p99.into()),
                ],
            );
        }
        state.log.dump_to_stderr("drain");
        eprintln!(
            "--- final metrics ---\n{}",
            render_gateway_metrics(&state, false)
        );

        GatewaySummary {
            requests: state.metrics.requests_total(),
            forwards: state
                .peers
                .iter()
                .map(|p| p.forwards.load(Ordering::Relaxed))
                .sum(),
            retries: state.retries.load(Ordering::Relaxed),
            hedges: state.hedges.load(Ordering::Relaxed),
            requeued: state.requeued.load(Ordering::Relaxed),
            clean,
        }
    }
}

/// Waits until no connection is open, or `deadline` passes.
fn wait_idle(state: &GatewayState, deadline: Instant) -> bool {
    let mut conns = lock_unpoisoned(&state.conns);
    loop {
        if *conns == 0 {
            return true;
        }
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        let wait = (deadline - now).min(Duration::from_millis(50));
        conns = state
            .conns_cv
            .wait_timeout(conns, wait)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .0;
    }
}

/// One health probe of one peer; drives its breaker.
fn probe_peer(state: &GatewayState, idx: usize) {
    let peer = &state.peers[idx];
    let deadline = Instant::now()
        + PROBE_DEADLINE.min(state.config.probe_interval.max(Duration::from_millis(50)));
    let result = with_scope(&peer.addr, || fail_point(sites::PEER_HEALTH)).map_err(|f| {
        if f.refused {
            ClientError::Connect(format!("{}: injected refusal", peer.addr))
        } else {
            ClientError::Io(format!("injected fault at {}", f.site))
        }
    });
    let healthy = match result {
        Err(_) => false,
        Ok(()) => client::request(&peer.addr, "GET", "/healthz", &[], b"", Some(deadline))
            .map(|resp| resp.status == 200)
            .unwrap_or(false),
    };
    let now = Instant::now();
    let mut breaker = lock_unpoisoned(&peer.breaker);
    let change = if healthy {
        peer.probes_ok.fetch_add(1, Ordering::Relaxed);
        breaker.record_success(now)
    } else {
        peer.probes_failed.fetch_add(1, Ordering::Relaxed);
        breaker.record_failure(now)
    };
    drop(breaker);
    state.note_transition(idx, change);
}

/// Why a forward produced no relayable response.
enum ForwardError {
    /// The ring is empty (cannot happen post-`bind`, but total).
    NoPeers,
    /// The request budget expired mid-forward.
    Deadline,
    /// Every attempt failed in transport; the last error and its class.
    Exhausted { attempts: u32, last: String },
}

/// One attempt against one peer, through the faultpoint.
fn forward_once(
    state: &GatewayState,
    idx: usize,
    method: &str,
    path: &str,
    headers: &[(String, String)],
    body: &[u8],
    deadline: Option<Instant>,
) -> Result<PeerResponse, ClientError> {
    let peer = &state.peers[idx];
    with_scope(&peer.addr, || fail_point(sites::GATEWAY_FORWARD)).map_err(|f| {
        if f.refused {
            ClientError::Connect(format!("{}: injected refusal", peer.addr))
        } else {
            ClientError::Io(format!("injected fault at {}", f.site))
        }
    })?;
    let borrowed: Vec<(&str, &str)> = headers
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_str()))
        .collect();
    client::request(&peer.addr, method, path, &borrowed, body, deadline)
}

/// Forwards with bounded retries, resharding to the next replica after
/// each transport failure (or peer 503) with exponential backoff and
/// deterministic jitter, all inside `budget`. Returns the first real
/// response and the peer index that produced it. Every attempt opens
/// a `forward` child span under `tracer` carrying the peer, attempt
/// number, outcome, and any backoff that followed; the attempt that
/// produced the relayed response is marked `winner=true` (the stitch
/// anchor).
#[allow(clippy::too_many_arguments)]
fn forward_with_retries(
    state: &GatewayState,
    key: &str,
    method: &str,
    path: &str,
    headers: &[(String, String)],
    body: &[u8],
    budget: &Budget,
    start_offset: usize,
    tracer: &Tracer,
) -> Result<(PeerResponse, usize), ForwardError> {
    if state.ring.is_empty() {
        return Err(ForwardError::NoPeers);
    }
    let mut last_err = String::new();
    let mut last_busy: Option<(PeerResponse, usize)> = None;
    let mut attempts = 0u32;
    for attempt in 0..=state.config.max_retries {
        if budget.check().is_err() {
            return Err(ForwardError::Deadline);
        }
        let order = state.candidates(key, start_offset + attempt as usize);
        let idx = order[0];
        let peer = &state.peers[idx];
        if attempt > 0 {
            state.retries.fetch_add(1, Ordering::Relaxed);
        }
        attempts += 1;

        let span = tracer.span(FORWARD_SPAN);
        span.attr("peer", peer.addr.as_str());
        span.attr("attempt", u64::from(attempt));
        // Breaker evidence: how many preferred replicas were ejected
        // and demoted behind this choice.
        let now = Instant::now();
        let ejected = order
            .iter()
            .filter(|i| !lock_unpoisoned(&state.peers[**i].breaker).admits(now))
            .count();
        if ejected > 0 {
            span.event_attr("breaker_skip", "ejected", ejected);
        }

        // Re-derive the hop deadline from what is left *now*.
        let mut hop_headers: Vec<(String, String)> = headers.to_vec();
        if let Some(left) = budget.remaining() {
            hop_headers.push((
                "X-Ptmap-Deadline-Ms".to_string(),
                (left.as_millis() as u64).max(1).to_string(),
            ));
        }
        match forward_once(
            state,
            idx,
            method,
            path,
            &hop_headers,
            body,
            budget.deadline(),
        ) {
            Ok(resp) => {
                peer.forwards.fetch_add(1, Ordering::Relaxed);
                span.attr("status", u64::from(resp.status));
                // Any parsed response proves the peer alive.
                let change = lock_unpoisoned(&peer.breaker).record_success(Instant::now());
                state.note_transition(idx, change);
                if resp.status == 503 {
                    // Overloaded or draining: reshard, but the breaker
                    // stays closed — the peer is answering.
                    span.event("peer_busy");
                    last_busy = Some((resp, idx));
                    last_err = format!("{}: 503 busy", peer.addr);
                } else {
                    span.attr(WINNER_ATTR, true);
                    return Ok((resp, idx));
                }
            }
            Err(ClientError::DeadlineExpired) => {
                peer.failures.fetch_add(1, Ordering::Relaxed);
                span.attr("error", "deadline");
                let change = lock_unpoisoned(&peer.breaker).record_failure(Instant::now());
                state.note_transition(idx, change);
                return Err(ForwardError::Deadline);
            }
            Err(e) => {
                peer.failures.fetch_add(1, Ordering::Relaxed);
                span.attr("error", e.to_string());
                let change = lock_unpoisoned(&peer.breaker).record_failure(Instant::now());
                state.note_transition(idx, change);
                last_err = format!("{}: {e}", peer.addr);
            }
        }
        // Backoff before the next replica: base·2^attempt plus jitter
        // derived from (key, attempt) so a thundering herd of retries
        // for different keys spreads out, capped by the budget.
        if attempt < state.config.max_retries {
            let base = state.config.backoff_base.max(Duration::from_millis(1));
            let step = base.saturating_mul(1 << attempt.min(10));
            let jitter_ms =
                hash64(format!("{key}:{attempt}").as_bytes()) % (base.as_millis().max(1) as u64);
            let mut sleep = step + Duration::from_millis(jitter_ms);
            if let Some(left) = budget.remaining() {
                sleep = sleep.min(left);
            }
            span.attr("backoff_ms", sleep.as_millis() as u64);
            drop(span);
            std::thread::sleep(sleep);
        }
    }
    // All attempts spent. A peer's own 503 is more truthful than a
    // synthesized 502 — relay the last one if we saw any.
    if let Some(busy) = last_busy {
        return Ok(busy);
    }
    Err(ForwardError::Exhausted {
        attempts,
        last: last_err,
    })
}

/// What a hedge leg reports back: its ring offset and the forward's
/// outcome.
type LegResult = (usize, Result<(PeerResponse, usize), ForwardError>);

/// A sync-compile forward, hedged when configured: if the primary has
/// not answered after `hedge_after`, a second forward starts one
/// replica further along the failover sequence and the first response
/// wins.
fn forward_sync(
    state: &Arc<GatewayState>,
    key: &str,
    headers: &[(String, String)],
    body: &[u8],
    budget: &Budget,
    tracer: &Tracer,
) -> Result<(PeerResponse, usize), ForwardError> {
    let hedge_after = match state.config.hedge_after {
        Some(d) if state.ring.len() > 1 => d,
        _ => {
            return forward_with_retries(
                state, key, "POST", "/compile", headers, body, budget, 0, tracer,
            )
        }
    };

    let (tx, rx) = mpsc::channel();
    let spawn_leg = |offset: usize, tx: mpsc::Sender<LegResult>| {
        let state = Arc::clone(state);
        let key = key.to_string();
        let headers = headers.to_vec();
        let body = body.to_vec();
        let budget = budget.clone();
        // A clone records into the same trace under the same
        // parent, so both legs' forward spans land side by side.
        let tracer = tracer.clone();
        let _ = std::thread::Builder::new()
            .name("ptmap-gw-fwd".to_string())
            .spawn(move || {
                let result = forward_with_retries(
                    &state, &key, "POST", "/compile", &headers, &body, &budget, offset, &tracer,
                );
                let _ = tx.send((offset, result));
            });
    };
    spawn_leg(0, tx.clone());
    match rx.recv_timeout(hedge_after) {
        Ok((_, result)) => result,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            state.hedges.fetch_add(1, Ordering::Relaxed);
            tracer.event("hedge_start");
            state.log.info(
                "hedge",
                tracer.trace_id(),
                "primary quiet past hedge-after; racing a second replica",
                &[("after_ms", (hedge_after.as_millis() as u64).into())],
            );
            spawn_leg(1, tx);
            match rx.recv() {
                Ok((offset, result)) => {
                    if offset == 1 && result.is_ok() {
                        state.hedge_wins.fetch_add(1, Ordering::Relaxed);
                        tracer.event("hedge_winner");
                    }
                    result
                }
                Err(_) => Err(ForwardError::Exhausted {
                    attempts: 0,
                    last: "all forward legs died".to_string(),
                }),
            }
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(ForwardError::Exhausted {
            attempts: 0,
            last: "forward leg died".to_string(),
        }),
    }
}

/// Maps a terminal forward error to the client-facing response, in the
/// same outcome shape the daemons produce.
fn forward_error_response(
    state: &GatewayState,
    name: &str,
    err: ForwardError,
    trace_id: Option<&str>,
) -> Response {
    match err {
        ForwardError::NoPeers => {
            state.metrics.reject("no-peers");
            state.log.warn(
                "forward_failed",
                trace_id,
                "no backend peers",
                &[("name", name.into()), ("reason", "no-peers".into())],
            );
            let outcome = error_outcome(name, "overloaded", "no backend peers".to_string());
            Response::json(503, serde_json::to_string(&outcome).unwrap_or_default())
                .with_header("Retry-After", "1".to_string())
        }
        ForwardError::Deadline => {
            state.metrics.reject("deadline");
            state.log.warn(
                "forward_failed",
                trace_id,
                "deadline expired while forwarding",
                &[("name", name.into()), ("reason", "deadline".into())],
            );
            let outcome = error_outcome(
                name,
                "timeout",
                "deadline expired while forwarding".to_string(),
            );
            Response::json(504, serde_json::to_string(&outcome).unwrap_or_default())
        }
        ForwardError::Exhausted { attempts, last } => {
            state.metrics.reject("unreachable");
            state.log.warn(
                "forward_failed",
                trace_id,
                &format!("all {attempts} forward attempts failed; last: {last}"),
                &[
                    ("name", name.into()),
                    ("reason", "unreachable".into()),
                    ("attempts", u64::from(attempts).into()),
                ],
            );
            let outcome = error_outcome(
                name,
                "unreachable",
                format!("all {attempts} forward attempts failed; last: {last}"),
            );
            Response::json(502, serde_json::to_string(&outcome).unwrap_or_default())
        }
    }
}

/// Relays a peer response, keeping the body byte-identical and the
/// API-meaningful headers, and stamping which peer answered.
fn relay(state: &GatewayState, resp: PeerResponse, idx: usize) -> Response {
    let mut out = Response::json(resp.status, String::new());
    out.body = resp.body.clone();
    for name in [
        "x-ptmap-trace-id",
        "x-ptmap-quality",
        "x-ptmap-coalesced",
        "retry-after",
    ] {
        if let Some(v) = resp.header(name) {
            out = out.with_header(name, v.to_string());
        }
    }
    out.with_header("X-Ptmap-Peer", state.peers[idx].addr.clone())
}

/// Validates the optional request headers shared by `/compile` and
/// `/jobs`; returns `(timeout, quality)` or the structured 400.
fn validate_headers(
    request: &Request,
    config: &GatewayConfig,
) -> Result<(Duration, Option<BackendKind>), Response> {
    let timeout = match request.header("x-ptmap-deadline-ms") {
        None => config.default_timeout,
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => Duration::from_millis(ms).min(config.default_timeout),
            Err(_) => {
                return Err(Response::json(
                    400,
                    format!(
                        "{{\"error\":{:?},\"reason\":\"bad-deadline\"}}",
                        format!("bad X-Ptmap-Deadline-Ms {raw:?}: expected milliseconds")
                    ),
                ))
            }
        },
    };
    let quality = match request.header("x-ptmap-quality") {
        None => None,
        Some(raw) => match raw.parse::<BackendKind>() {
            Ok(q) => Some(q),
            Err(e) => {
                return Err(Response::json(
                    400,
                    format!(
                        "{{\"error\":{:?},\"reason\":\"bad-quality\"}}",
                        format!("bad X-Ptmap-Quality: {e}")
                    ),
                ))
            }
        },
    };
    Ok((timeout, quality))
}

/// Headers propagated on every forwarded hop (minus the deadline,
/// which [`forward_with_retries`] re-derives per attempt).
fn hop_headers(request: &Request) -> Vec<(String, String)> {
    let mut headers = vec![("Content-Type".to_string(), "application/json".to_string())];
    for name in ["x-ptmap-trace-id", "x-ptmap-quality"] {
        if let Some(v) = request.header(name) {
            headers.push((name.to_string(), v.to_string()));
        }
    }
    headers
}

/// Parses the body as a spec and resolves its routing key under the
/// quality-adjusted base config.
fn resolve_key(
    state: &GatewayState,
    body: &[u8],
    quality: Option<BackendKind>,
) -> Result<(String, String), Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::json(400, "{\"error\":\"body is not UTF-8\"}".to_string()))?;
    let spec: JobSpec = serde_json::from_str(text).map_err(|e| {
        Response::json(400, format!("{{\"error\":{:?}}}", format!("job spec: {e}")))
    })?;
    let job =
        Job::resolve(&spec).map_err(|e| Response::json(400, format!("{{\"error\":{e:?}}}")))?;
    let mut base = state.config.base.clone();
    if let Some(q) = quality {
        base.mapper.backend = q;
    }
    Ok((request_key(&job, &base), job.name))
}

/// Reads, routes, answers, closes.
fn handle_connection(state: &Arc<GatewayState>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(HttpError::BadRequest(m)) => {
            let resp = Response::json(400, format!("{{\"error\":{:?}}}", m));
            let _ = write_response(&mut stream, &resp);
            return;
        }
        Err(HttpError::TooLarge(m)) => {
            let resp = Response::json(413, format!("{{\"error\":{:?}}}", m));
            let _ = write_response(&mut stream, &resp);
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    let _ = stream.set_read_timeout(None);
    state.requests.fetch_add(1, Ordering::Relaxed);

    let t0 = Instant::now();
    let (endpoint, response) = route(state, &request);
    state
        .metrics
        .observe_request(endpoint, response.status, t0.elapsed());
    let _ = write_response(&mut stream, &response);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Dispatches one request.
fn route(state: &Arc<GatewayState>, request: &Request) -> (&'static str, Response) {
    let (path, query) = match request.path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (request.path.as_str(), None),
    };
    match (request.method.as_str(), path) {
        ("POST", "/compile") => ("compile", handle_compile(state, request)),
        ("POST", "/jobs") => ("jobs_submit", handle_submit(state, request)),
        ("GET", path) if path.starts_with("/jobs/") && path.ends_with("/trace") => {
            ("jobs_trace", handle_trace(state, path, query))
        }
        ("GET", path) if path.starts_with("/jobs/") => ("jobs_poll", handle_poll(state, path)),
        ("GET", "/metrics") => (
            "metrics",
            Response::text(200, render_gateway_metrics(state, true)),
        ),
        ("GET", "/cluster") => ("cluster", handle_cluster(state)),
        ("GET", "/healthz") => ("healthz", handle_healthz(state)),
        ("GET", "/debug/events") => (
            "debug_events",
            crate::events::events_response(&state.log, query),
        ),
        (_, "/compile" | "/jobs" | "/metrics" | "/cluster" | "/healthz" | "/debug/events") => (
            "other",
            Response::json(405, "{\"error\":\"method not allowed\"}".to_string()),
        ),
        _ => (
            "other",
            Response::json(404, "{\"error\":\"not found\"}".to_string()),
        ),
    }
}

/// The gateway's own draining 503.
fn draining_response(state: &GatewayState) -> Response {
    state.metrics.reject("draining");
    Response::json(
        503,
        "{\"error\":\"gateway is draining\",\"reason\":\"draining\"}".to_string(),
    )
    .with_header(
        "Retry-After",
        state.config.drain_timeout.as_secs().max(1).to_string(),
    )
}

/// `POST /compile`: cache tier, then a (possibly hedged) forward. The
/// whole hop records a gateway-side span tree under the client's
/// trace id (or a freshly minted one), which is retained for
/// stitching with the daemon's compile tree.
fn handle_compile(state: &Arc<GatewayState>, request: &Request) -> Response {
    if state.draining.load(Ordering::Acquire) {
        return draining_response(state);
    }
    let trace_id = request
        .header("x-ptmap-trace-id")
        .map(str::to_string)
        .unwrap_or_else(|| next_trace_id("gateway"));
    let tracer = Tracer::root_with_id("gateway", trace_id.clone());
    let (response, winner) = {
        let root = tracer.span("gateway");
        root.attr("endpoint", "compile");
        compile_via_cluster(state, request, &root, &trace_id)
    };
    if let Some(trace) = tracer.finish() {
        if let Some(idx) = winner {
            export_stitched(state, &trace, idx);
        }
        state.traces.insert(trace);
    }
    // Error paths carry no daemon-set trace-id header; stamp ours so
    // the client can still fetch the gateway-side trace.
    if response
        .headers
        .iter()
        .any(|(n, _)| n.eq_ignore_ascii_case("x-ptmap-trace-id"))
    {
        response
    } else {
        response.with_header("X-Ptmap-Trace-Id", trace_id)
    }
}

/// The body of one traced sync compile: admission, ring lookup,
/// shared-cache tier, forward. Returns the response plus the winning
/// peer index when a forward produced it (for `--trace-dir` export).
fn compile_via_cluster(
    state: &Arc<GatewayState>,
    request: &Request,
    root: &Span,
    trace_id: &str,
) -> (Response, Option<usize>) {
    let admission = root.tracer().span("admission");
    let (timeout, quality) = match validate_headers(request, &state.config) {
        Ok(v) => v,
        Err(resp) => {
            admission.attr("rejected", "bad-headers");
            return (resp, None);
        }
    };
    let (key, name) = match resolve_key(state, &request.body, quality) {
        Ok(v) => v,
        Err(resp) => {
            admission.attr("rejected", "bad-spec");
            return (resp, None);
        }
    };
    admission.attr("timeout_ms", timeout.as_millis() as u64);

    let budget = state.root.scoped_child(Some(timeout));
    if let Err(e) = budget.check() {
        admission.attr("rejected", "deadline");
        state.metrics.reject("deadline");
        let outcome = error_outcome(&name, e.class(), e.to_string());
        return (
            Response::json(
                outcome_status(&outcome),
                serde_json::to_string(&outcome).unwrap_or_default(),
            ),
            None,
        );
    }
    drop(admission);

    {
        let lookup = root.tracer().span("ring_lookup");
        let order = state.candidates(&key, 0);
        lookup.attr("owner", state.peers[order[0]].addr.as_str());
        lookup.attr("replicas", order.len());
    }

    // Shared cache tier: a key any peer (or a previous gateway run)
    // already compiled is answered without a hop.
    if let Some(cache) = &state.cache {
        let lookup = root.tracer().span("shared_cache");
        if let Some(report) = cache.get(&key) {
            lookup.attr("hit", true);
            state.shared_cache_hits.fetch_add(1, Ordering::Relaxed);
            state.log.info(
                "compile",
                Some(trace_id),
                "",
                &[
                    ("name", name.as_str().into()),
                    ("status", 200u64.into()),
                    ("cache_hit", true.into()),
                ],
            );
            let outcome = JobOutcome {
                name,
                cache_hit: true,
                report: Some(report),
                error: None,
                error_class: None,
                degraded: None,
                retries: 0,
                trace_id: Some(trace_id.to_string()),
            };
            return (
                Response::json(200, serde_json::to_string(&outcome).unwrap_or_default())
                    .with_header("X-Ptmap-Gateway-Cache", "hit".to_string()),
                None,
            );
        }
        lookup.attr("hit", false);
    }

    // Always propagate the gateway's trace id: the daemon adopts it
    // (and force-keeps the trace), so its compile tree is fetchable
    // under the same id for stitching.
    let mut headers = hop_headers(request);
    if !headers
        .iter()
        .any(|(n, _)| n.eq_ignore_ascii_case("x-ptmap-trace-id"))
    {
        headers.push(("x-ptmap-trace-id".to_string(), trace_id.to_string()));
    }
    match forward_sync(state, &key, &headers, &request.body, &budget, root.tracer()) {
        Ok((resp, idx)) => {
            // Populate the shared tier from forwarded successes.
            if resp.status == 200 {
                if let Some(cache) = &state.cache {
                    if let Ok(outcome) = serde_json::from_str::<JobOutcome>(&resp.body_text()) {
                        if let Some(report) = &outcome.report {
                            cache.put(&key, report);
                        }
                    }
                }
            }
            state.log.info(
                "compile",
                Some(trace_id),
                "",
                &[
                    ("name", name.as_str().into()),
                    ("status", u64::from(resp.status).into()),
                    ("peer", AttrValue::Str(state.peers[idx].addr.clone())),
                ],
            );
            (relay(state, resp, idx), Some(idx))
        }
        Err(err) => (
            forward_error_response(state, &name, err, Some(trace_id)),
            None,
        ),
    }
}

/// Exports the stitched cluster trace for one forwarded sync compile
/// to `--trace-dir` as `<trace-id>.json` Chrome trace-event JSON,
/// fetching the daemon's raw span tree from the winning peer. Falls
/// back to the gateway-only tree if the fetch fails.
fn export_stitched(state: &GatewayState, gateway_trace: &Trace, winner: usize) {
    let Some(dir) = &state.config.trace_dir else {
        return;
    };
    let remote = format!("/jobs/{}/trace?format=raw", gateway_trace.trace_id);
    let deadline = Instant::now() + PROBE_DEADLINE;
    let daemons: Vec<Trace> = client::request(
        &state.peers[winner].addr,
        "GET",
        &remote,
        &[],
        b"",
        Some(deadline),
    )
    .ok()
    .filter(|r| r.status == 200)
    .and_then(|r| serde_json::from_str::<Trace>(&r.body_text()).ok())
    .into_iter()
    .collect();
    let stitched = stitch(gateway_trace, &daemons);
    // Client-supplied trace ids are arbitrary bytes; keep the
    // filename safe.
    let safe: String = stitched
        .trace_id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let path = dir.join(format!("{safe}.json"));
    let written = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(&path, chrome_trace_json(&stitched)));
    if let Err(e) = written {
        state.log.warn(
            "trace_export_failed",
            Some(&stitched.trace_id),
            &format!("write {}: {e}", path.display()),
            &[],
        );
    }
}

/// `POST /jobs`: forward to the key's owner, track the mapping. The
/// gateway-side span tree stays open for the job's tracked lifetime,
/// so later requeues land inside it.
fn handle_submit(state: &Arc<GatewayState>, request: &Request) -> Response {
    if state.draining.load(Ordering::Acquire) {
        return draining_response(state);
    }
    let trace_id = request
        .header("x-ptmap-trace-id")
        .map(str::to_string)
        .unwrap_or_else(|| next_trace_id("gateway"));
    let tracer = Tracer::root_with_id("gateway", trace_id.clone());
    let root = tracer.span("gateway");
    root.attr("endpoint", "jobs_submit");
    let admission = root.tracer().span("admission");
    let (timeout, quality) = match validate_headers(request, &state.config) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let (key, name) = match resolve_key(state, &request.body, quality) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    drop(admission);
    let budget = state.root.scoped_child(Some(timeout.min(POLL_DEADLINE)));
    let headers = hop_headers(request);
    let (resp, idx) = match forward_with_retries(
        state,
        &key,
        "POST",
        "/jobs",
        &headers,
        &request.body,
        &budget,
        0,
        root.tracer(),
    ) {
        Ok(v) => v,
        Err(err) => return forward_error_response(state, &name, err, Some(&trace_id)),
    };
    if resp.status != 202 {
        return relay(state, resp, idx);
    }
    let Some(remote_id) = parse_job_id(&resp.body) else {
        return Response::json(
            502,
            format!(
                "{{\"error\":{:?}}}",
                format!(
                    "peer {} answered 202 without a job id",
                    state.peers[idx].addr
                )
            ),
        );
    };
    let gid = state.next_job_id.fetch_add(1, Ordering::Relaxed);
    root.attr("job_id", gid);
    root.attr("peer", state.peers[idx].addr.as_str());
    state.log.info(
        "job_submitted",
        Some(&trace_id),
        "",
        &[
            ("job", gid.into()),
            ("name", name.into()),
            ("peer", AttrValue::Str(state.peers[idx].addr.clone())),
        ],
    );
    lock_unpoisoned(&state.jobs).insert(
        gid,
        GwJob {
            body: request.body.clone(),
            quality: request.header("x-ptmap-quality").map(str::to_string),
            key,
            peer: idx,
            remote_id,
            done: None,
            span: Arc::new(root),
        },
    );
    Response::json(
        202,
        format!(
            "{{\"id\":{gid},\"state\":\"queued\",\"peer\":{:?}}}",
            state.peers[idx].addr
        ),
    )
    .with_header("X-Ptmap-Peer", state.peers[idx].addr.clone())
    .with_header("X-Ptmap-Trace-Id", trace_id)
}

/// Extracts `id` from a submit/poll body.
fn parse_job_id(body: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(body).ok()?;
    let value: Value = serde_json::from_str(text).ok()?;
    match value.get("id") {
        Some(Value::UInt(u)) => Some(*u),
        Some(Value::Int(i)) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

/// Rewrites the `id` field of a poll body to the gateway's job id.
fn rewrite_job_id(body: &str, gid: u64) -> Option<String> {
    let mut value: Value = serde_json::from_str(body).ok()?;
    if let Value::Object(fields) = &mut value {
        for (name, field) in fields.iter_mut() {
            if name == "id" {
                *field = Value::UInt(gid);
            }
        }
    }
    serde_json::to_string(&value).ok()
}

/// Resubmits a tracked job whose owner is unreachable to the next live
/// replica. Returns the poll-shaped response for the client. The
/// attempt records a `requeue` span inside the job's still-open
/// gateway trace plus a correlated event-log line.
fn requeue_job(state: &Arc<GatewayState>, gid: u64, job: &GwJob) -> Response {
    let span = job.tracer().span("requeue");
    span.attr("job_id", gid);
    span.attr("from", state.peers[job.peer].addr.as_str());
    let mut headers = vec![("Content-Type".to_string(), "application/json".to_string())];
    if let Some(q) = &job.quality {
        headers.push(("x-ptmap-quality".to_string(), q.clone()));
    }
    let budget = state.root.scoped_child(Some(POLL_DEADLINE));
    for candidate in state.candidates(&job.key, 0) {
        if candidate == job.peer {
            continue; // the peer that just failed
        }
        let result = forward_once(
            state,
            candidate,
            "POST",
            "/jobs",
            &headers,
            &job.body,
            budget.deadline(),
        );
        let Ok(resp) = result else {
            let change =
                lock_unpoisoned(&state.peers[candidate].breaker).record_failure(Instant::now());
            state.note_transition(candidate, change);
            continue;
        };
        state.peers[candidate]
            .forwards
            .fetch_add(1, Ordering::Relaxed);
        let change =
            lock_unpoisoned(&state.peers[candidate].breaker).record_success(Instant::now());
        state.note_transition(candidate, change);
        if resp.status != 202 {
            continue; // queue full or draining there; try further along
        }
        let Some(remote_id) = parse_job_id(&resp.body) else {
            continue;
        };
        if let Some(tracked) = lock_unpoisoned(&state.jobs).get_mut(&gid) {
            tracked.peer = candidate;
            tracked.remote_id = remote_id;
        }
        state.requeued.fetch_add(1, Ordering::Relaxed);
        span.attr("to", state.peers[candidate].addr.as_str());
        span.attr("remote_id", remote_id);
        state.log.warn(
            "job_requeued",
            job.tracer().trace_id(),
            "owner unreachable; job resubmitted",
            &[
                ("job", gid.into()),
                ("from", AttrValue::Str(state.peers[job.peer].addr.clone())),
                ("to", AttrValue::Str(state.peers[candidate].addr.clone())),
            ],
        );
        return Response::json(
            202,
            format!(
                "{{\"id\":{gid},\"state\":\"queued\",\"requeued\":true,\"peer\":{:?}}}",
                state.peers[candidate].addr
            ),
        )
        .with_header("X-Ptmap-Peer", state.peers[candidate].addr.clone());
    }
    state.metrics.reject("unreachable");
    span.attr("error", "no replica accepted the requeue");
    state.log.error(
        "requeue_failed",
        job.tracer().trace_id(),
        "owner unreachable and no replica accepted a requeue",
        &[("job", gid.into())],
    );
    Response::json(
        503,
        format!(
            "{{\"error\":\"job {gid} owner unreachable and no replica accepted a requeue\",\
             \"reason\":\"unreachable\"}}"
        ),
    )
    .with_header("Retry-After", "1".to_string())
}

/// `GET /jobs/<id>`: poll through to the owner, requeue if it died.
fn handle_poll(state: &Arc<GatewayState>, path: &str) -> Response {
    let id_text = &path["/jobs/".len()..];
    let Ok(gid) = id_text.parse::<u64>() else {
        return Response::json(400, format!("{{\"error\":\"bad job id {id_text:?}\"}}"));
    };
    let Some(job) = lock_unpoisoned(&state.jobs).get(&gid).cloned() else {
        return Response::json(404, format!("{{\"error\":\"no job {gid}\"}}"));
    };
    if let Some(done) = &job.done {
        return Response::json(200, done.clone());
    }
    let budget = state.root.scoped_child(Some(POLL_DEADLINE));
    let remote_path = format!("/jobs/{}", job.remote_id);
    match forward_once(
        state,
        job.peer,
        "GET",
        &remote_path,
        &[],
        b"",
        budget.deadline(),
    ) {
        Ok(resp) if resp.status == 200 => {
            state.peers[job.peer]
                .forwards
                .fetch_add(1, Ordering::Relaxed);
            let change =
                lock_unpoisoned(&state.peers[job.peer].breaker).record_success(Instant::now());
            state.note_transition(job.peer, change);
            let Some(body) = rewrite_job_id(&resp.body_text(), gid) else {
                return Response::json(
                    502,
                    "{\"error\":\"peer poll body did not parse\"}".to_string(),
                );
            };
            if body.contains("\"state\":\"done\"") {
                if let Some(tracked) = lock_unpoisoned(&state.jobs).get_mut(&gid) {
                    tracked.done = Some(body.clone());
                }
                // Snapshot and retain the gateway-side trace now that
                // the job reached a terminal state, so a stitched
                // cluster trace is servable for it.
                if let Some(trace) = job.tracer().finish() {
                    state.traces.insert(trace);
                }
                state.log.info(
                    "job_done",
                    job.tracer().trace_id(),
                    "",
                    &[
                        ("job", gid.into()),
                        ("peer", AttrValue::Str(state.peers[job.peer].addr.clone())),
                    ],
                );
            }
            Response::json(200, body)
                .with_header("X-Ptmap-Peer", state.peers[job.peer].addr.clone())
        }
        // A 404 means the owner restarted and lost the job table; treat
        // it like a dead owner and resubmit.
        Ok(resp) if resp.status == 404 => {
            state.peers[job.peer]
                .forwards
                .fetch_add(1, Ordering::Relaxed);
            requeue_job(state, gid, &job)
        }
        Ok(resp) => {
            state.peers[job.peer]
                .forwards
                .fetch_add(1, Ordering::Relaxed);
            relay(state, resp, job.peer)
        }
        Err(ClientError::Connect(_)) => {
            let change =
                lock_unpoisoned(&state.peers[job.peer].breaker).record_failure(Instant::now());
            state.note_transition(job.peer, change);
            state.peers[job.peer]
                .failures
                .fetch_add(1, Ordering::Relaxed);
            requeue_job(state, gid, &job)
        }
        Err(e) => {
            let change =
                lock_unpoisoned(&state.peers[job.peer].breaker).record_failure(Instant::now());
            state.note_transition(job.peer, change);
            state.peers[job.peer]
                .failures
                .fetch_add(1, Ordering::Relaxed);
            Response::json(
                502,
                format!("{{\"error\":{:?}}}", format!("poll forward failed: {e}")),
            )
        }
    }
}

/// Parses a raw daemon [`Trace`] out of a peer's
/// `/jobs/<id>/trace?format=raw` response.
fn parse_raw_trace(resp: &PeerResponse) -> Option<Trace> {
    if resp.status != 200 {
        return None;
    }
    serde_json::from_str::<Trace>(&resp.body_text()).ok()
}

/// Serves a (possibly stitched) trace: Chrome trace-event JSON by
/// default, the raw span tree with `?format=raw`.
fn trace_response(trace: &Trace, raw: bool) -> Response {
    let body = if raw {
        serde_json::to_string(trace).unwrap_or_else(|_| "{}".to_string())
    } else {
        chrome_trace_json(trace)
    };
    Response::json(200, body).with_header("X-Ptmap-Trace-Id", trace.trace_id.clone())
}

/// `GET /jobs/<id>/trace`: one stitched cluster trace. The gateway's
/// own span tree (admission, forwards, retries, hedges, requeues) and
/// the daemon's compile tree are merged under the shared trace id:
/// the daemon's spans graft onto the winning `forward` span. A
/// numeric id resolves through the tracked async job to its owner;
/// otherwise the id is a trace id — served from the local store and,
/// for the daemon half, fanned out to live (breaker-admitting) peers
/// with each probe bounded by a slice of the remaining request budget
/// so one hung peer cannot starve the rest of the fan-out.
fn handle_trace(state: &Arc<GatewayState>, path: &str, query: Option<&str>) -> Response {
    let id_text = &path["/jobs/".len()..path.len() - "/trace".len()];
    let raw = query
        .map(|q| q.split('&').any(|kv| kv == "format=raw"))
        .unwrap_or(false);
    let budget = state.root.scoped_child(Some(POLL_DEADLINE));

    if let Ok(gid) = id_text.parse::<u64>() {
        let Some(job) = lock_unpoisoned(&state.jobs).get(&gid).cloned() else {
            return Response::json(404, format!("{{\"error\":\"no job {gid}\"}}"));
        };
        let remote = format!("/jobs/{}/trace?format=raw", job.remote_id);
        let daemon = forward_once(state, job.peer, "GET", &remote, &[], b"", budget.deadline())
            .ok()
            .as_ref()
            .and_then(parse_raw_trace);
        // The stored snapshot (taken at poll-done) is preferred; a
        // still-running job gets a live snapshot of its open tree.
        let gateway = match job
            .tracer()
            .trace_id()
            .and_then(|id| state.traces.by_trace_id(id))
        {
            Some(stored) => Some(stored.raw.as_ref().clone()),
            None => job.tracer().finish(),
        };
        return match (gateway, daemon) {
            (Some(gw), Some(d)) => trace_response(&stitch(&gw, &[d]), raw),
            (Some(gw), None) => trace_response(&stitch(&gw, &[]), raw),
            (None, Some(d)) => trace_response(&d, raw),
            (None, None) => {
                Response::json(404, format!("{{\"error\":\"no trace for job {gid}\"}}"))
            }
        };
    }

    let stored = state.traces.by_trace_id(id_text);
    let mut daemon: Option<Trace> = None;
    let peers = state.available_peers();
    let total = peers.len();
    for (i, idx) in peers.into_iter().enumerate() {
        if budget.check().is_err() {
            break;
        }
        // Each probe gets an even slice of what is left (with a small
        // floor), never the whole remaining budget.
        let left = budget.remaining().unwrap_or(POLL_DEADLINE);
        let slice = (left / (total - i) as u32)
            .max(Duration::from_millis(100))
            .min(left);
        let remote = format!("/jobs/{id_text}/trace?format=raw");
        let deadline = Some(Instant::now() + slice);
        if let Ok(resp) = forward_once(state, idx, "GET", &remote, &[], b"", deadline) {
            if let Some(t) = parse_raw_trace(&resp) {
                daemon = Some(t);
                break;
            }
        }
    }
    match (stored, daemon) {
        (Some(gw), Some(d)) => trace_response(&stitch(&gw.raw, &[d]), raw),
        (Some(gw), None) => trace_response(&stitch(&gw.raw, &[]), raw),
        (None, Some(d)) => trace_response(&d, raw),
        (None, None) => Response::json(404, format!("{{\"error\":\"no trace {id_text}\"}}")),
    }
}

/// `GET /cluster`: membership and breaker introspection.
fn handle_cluster(state: &Arc<GatewayState>) -> Response {
    let now = Instant::now();
    let transitions = lock_unpoisoned(&state.transitions).clone();
    let peers: Vec<Value> = state
        .peers
        .iter()
        .enumerate()
        .map(|(idx, peer)| {
            let mut breaker = lock_unpoisoned(&peer.breaker);
            let state_name = breaker.state(now).name();
            let consecutive = breaker.consecutive_failures();
            drop(breaker);
            let opened = transitions.get(&(idx, "open")).copied().unwrap_or(0);
            Value::Object(vec![
                ("addr".to_string(), Value::Str(peer.addr.clone())),
                ("state".to_string(), Value::Str(state_name.to_string())),
                (
                    "consecutive_failures".to_string(),
                    Value::UInt(u64::from(consecutive)),
                ),
                (
                    "forwards".to_string(),
                    Value::UInt(peer.forwards.load(Ordering::Relaxed)),
                ),
                (
                    "failures".to_string(),
                    Value::UInt(peer.failures.load(Ordering::Relaxed)),
                ),
                (
                    "probes_ok".to_string(),
                    Value::UInt(peer.probes_ok.load(Ordering::Relaxed)),
                ),
                (
                    "probes_failed".to_string(),
                    Value::UInt(peer.probes_failed.load(Ordering::Relaxed)),
                ),
                ("times_opened".to_string(), Value::UInt(opened)),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("peers".to_string(), Value::Array(peers)),
        (
            "available".to_string(),
            Value::UInt(state.available_peers().len() as u64),
        ),
        (
            "vnodes_per_peer".to_string(),
            Value::UInt(crate::shard::VNODES as u64),
        ),
        (
            "jobs_tracked".to_string(),
            Value::UInt(lock_unpoisoned(&state.jobs).len() as u64),
        ),
        (
            "draining".to_string(),
            Value::Bool(state.draining.load(Ordering::Acquire)),
        ),
    ]);
    Response::json(200, serde_json::to_string(&doc).unwrap_or_default())
}

/// `GET /healthz`: the gateway is ready iff it can route somewhere.
fn handle_healthz(state: &Arc<GatewayState>) -> Response {
    if state.draining.load(Ordering::Acquire) {
        return Response::json(503, "{\"status\":\"draining\"}".to_string());
    }
    let available = state.available_peers().len();
    if available == 0 {
        return Response::json(503, "{\"status\":\"no peers available\"}".to_string());
    }
    Response::json(
        200,
        format!("{{\"status\":\"ok\",\"peers_available\":{available}}}"),
    )
}

/// The scalar singletons re-exported per peer in the cluster rollup.
const ROLLUP_METRICS: [(&str, &str); 6] = [
    (
        "ptmap_compiles_started_total",
        "ptmap_cluster_compiles_started_total",
    ),
    ("ptmap_queue_depth", "ptmap_cluster_queue_depth"),
    ("ptmap_inflight_compiles", "ptmap_cluster_inflight_compiles"),
    ("ptmap_cache_hits_total", "ptmap_cluster_cache_hits_total"),
    ("ptmap_model_version", "ptmap_cluster_model_version"),
    (
        "ptmap_process_start_time_seconds",
        "ptmap_cluster_peer_start_time_seconds",
    ),
];

/// Renders the gateway `/metrics` document. `rollup` additionally
/// scrapes each live peer's `/metrics` for the cluster view (skipped in
/// tests and the drain summary, where no network should be touched).
fn render_gateway_metrics(state: &GatewayState, rollup: bool) -> String {
    let mut out = String::new();
    render_http_sections(&state.metrics, &mut out);

    out.push_str("# HELP ptmap_gateway_forwards_total Forward attempts answered, by peer.\n");
    out.push_str("# TYPE ptmap_gateway_forwards_total counter\n");
    for peer in &state.peers {
        let _ = writeln!(
            out,
            "ptmap_gateway_forwards_total{{peer=\"{}\"}} {}",
            peer.addr,
            peer.forwards.load(Ordering::Relaxed)
        );
    }
    out.push_str(
        "# HELP ptmap_gateway_forward_failures_total Forward attempts failed in transport, \
         by peer.\n",
    );
    out.push_str("# TYPE ptmap_gateway_forward_failures_total counter\n");
    for peer in &state.peers {
        let _ = writeln!(
            out,
            "ptmap_gateway_forward_failures_total{{peer=\"{}\"}} {}",
            peer.addr,
            peer.failures.load(Ordering::Relaxed)
        );
    }
    out.push_str("# HELP ptmap_gateway_probes_total Health probes, by peer and outcome.\n");
    out.push_str("# TYPE ptmap_gateway_probes_total counter\n");
    for peer in &state.peers {
        let _ = writeln!(
            out,
            "ptmap_gateway_probes_total{{peer=\"{}\",outcome=\"ok\"}} {}",
            peer.addr,
            peer.probes_ok.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "ptmap_gateway_probes_total{{peer=\"{}\",outcome=\"failed\"}} {}",
            peer.addr,
            peer.probes_failed.load(Ordering::Relaxed)
        );
    }

    out.push_str(
        "# HELP ptmap_gateway_breaker_transitions_total Breaker transitions, by peer and \
         entered state.\n",
    );
    out.push_str("# TYPE ptmap_gateway_breaker_transitions_total counter\n");
    for ((idx, to), n) in lock_unpoisoned(&state.transitions).iter() {
        let _ = writeln!(
            out,
            "ptmap_gateway_breaker_transitions_total{{peer=\"{}\",state=\"{to}\"}} {n}",
            state.peers[*idx].addr
        );
    }

    out.push_str(
        "# HELP ptmap_gateway_peer_state Breaker state per peer \
         (0=closed, 1=half-open, 2=open).\n",
    );
    out.push_str("# TYPE ptmap_gateway_peer_state gauge\n");
    let now = Instant::now();
    let mut available = 0u64;
    for peer in &state.peers {
        let s = lock_unpoisoned(&peer.breaker).state(now);
        if s != BreakerState::Open {
            available += 1;
        }
        let code = match s {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        };
        let _ = writeln!(
            out,
            "ptmap_gateway_peer_state{{peer=\"{}\"}} {code}",
            peer.addr
        );
    }

    for (name, help, value) in [
        (
            "ptmap_gateway_peers_available",
            "Peers whose breaker admits traffic.",
            available,
        ),
        (
            "ptmap_gateway_jobs_tracked",
            "Async jobs the gateway is tracking.",
            lock_unpoisoned(&state.jobs).len() as u64,
        ),
        (
            "ptmap_gateway_draining",
            "1 while the gateway is draining for shutdown.",
            u64::from(state.draining.load(Ordering::Acquire)),
        ),
    ] {
        let _ = writeln!(
            out,
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}"
        );
    }
    for (name, help, value) in [
        (
            "ptmap_gateway_retries_total",
            "Forward attempts that were retries.",
            state.retries.load(Ordering::Relaxed),
        ),
        (
            "ptmap_gateway_hedges_total",
            "Hedged forwards started.",
            state.hedges.load(Ordering::Relaxed),
        ),
        (
            "ptmap_gateway_hedge_wins_total",
            "Hedged forwards that answered first.",
            state.hedge_wins.load(Ordering::Relaxed),
        ),
        (
            "ptmap_gateway_jobs_requeued_total",
            "Async jobs resubmitted after their owner died.",
            state.requeued.load(Ordering::Relaxed),
        ),
        (
            "ptmap_gateway_cache_hits_total",
            "Compiles answered from the gateway's shared cache tier.",
            state.shared_cache_hits.load(Ordering::Relaxed),
        ),
    ] {
        let _ = writeln!(
            out,
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}"
        );
    }

    if rollup {
        render_cluster_rollup(state, &mut out);
    }
    out
}

/// Scrapes each peer's `/metrics` and re-emits headline scalars under
/// `ptmap_cluster_*{peer="..."}`, plus an up/down gauge per peer.
fn render_cluster_rollup(state: &GatewayState, out: &mut String) {
    let mut up: Vec<(usize, bool)> = Vec::new();
    let mut rows: BTreeMap<&'static str, Vec<(usize, String)>> = BTreeMap::new();
    let mut builds: Vec<(usize, String)> = Vec::new();
    for (idx, peer) in state.peers.iter().enumerate() {
        let deadline = Instant::now() + PROBE_DEADLINE;
        let scraped = client::request(&peer.addr, "GET", "/metrics", &[], b"", Some(deadline));
        let Ok(resp) = scraped else {
            up.push((idx, false));
            continue;
        };
        if resp.status != 200 {
            up.push((idx, false));
            continue;
        }
        up.push((idx, true));
        let text = resp.body_text();
        for line in text.lines() {
            for (source, target) in ROLLUP_METRICS {
                if let Some(rest) = line.strip_prefix(source) {
                    if let Some(value) = rest.strip_prefix(' ') {
                        rows.entry(target)
                            .or_default()
                            .push((idx, value.to_string()));
                    }
                }
            }
            // Build identity carries its own label set; re-export it
            // verbatim with the peer label prepended.
            if let Some(rest) = line.strip_prefix("ptmap_build_info{") {
                if let Some((labels, _)) = rest.split_once('}') {
                    builds.push((idx, labels.to_string()));
                }
            }
        }
    }
    out.push_str("# HELP ptmap_cluster_peer_up Whether the peer answered a metrics scrape.\n");
    out.push_str("# TYPE ptmap_cluster_peer_up gauge\n");
    for (idx, ok) in &up {
        let _ = writeln!(
            out,
            "ptmap_cluster_peer_up{{peer=\"{}\"}} {}",
            state.peers[*idx].addr,
            u64::from(*ok)
        );
    }
    for (target, series) in rows {
        let _ = writeln!(
            out,
            "# HELP {target} Peer metric, rolled up by the gateway."
        );
        let _ = writeln!(out, "# TYPE {target} gauge");
        for (idx, value) in series {
            let _ = writeln!(
                out,
                "{target}{{peer=\"{}\"}} {value}",
                state.peers[idx].addr
            );
        }
    }
    if !builds.is_empty() {
        out.push_str(
            "# HELP ptmap_cluster_peer_build_info Peer build identity, rolled up by the \
             gateway.\n",
        );
        out.push_str("# TYPE ptmap_cluster_peer_build_info gauge\n");
        for (idx, labels) in builds {
            let _ = writeln!(
                out,
                "ptmap_cluster_peer_build_info{{peer=\"{}\",{labels}}} 1",
                state.peers[idx].addr
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_requires_peers() {
        let err = match Gateway::bind(GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            ..GatewayConfig::default()
        }) {
            Ok(_) => panic!("bind must fail without peers"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn job_id_parsing_and_rewriting() {
        assert_eq!(parse_job_id(b"{\"id\":7,\"state\":\"queued\"}"), Some(7));
        assert_eq!(parse_job_id(b"{\"state\":\"queued\"}"), None);
        assert_eq!(parse_job_id(b"not json"), None);

        let rewritten = rewrite_job_id("{\"id\":7,\"state\":\"done\"}", 42).unwrap();
        assert!(rewritten.contains("\"id\":42"), "{rewritten}");
        assert!(rewritten.contains("\"state\":\"done\""));
    }

    #[test]
    fn gateway_metrics_text_is_valid_prometheus() {
        let gw = Gateway::bind(GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            peers: vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()],
            ..GatewayConfig::default()
        })
        .unwrap();
        let handle = gw.handle();
        handle
            .state
            .metrics
            .observe_request("compile", 200, Duration::from_millis(5));
        handle
            .state
            .note_transition(0, Some((BreakerState::Closed, BreakerState::Open)));
        let text = handle.metrics_text();
        crate::metrics::check_prometheus_text(&text).expect("must parse");
        assert!(text.contains("ptmap_gateway_forwards_total{peer=\"127.0.0.1:1\"} 0"));
        assert!(text.contains(
            "ptmap_gateway_breaker_transitions_total{peer=\"127.0.0.1:1\",state=\"open\"} 1"
        ));
        assert!(text.contains("ptmap_gateway_peers_available 2"));
        assert!(text.contains("ptmap_gateway_hedges_total 0"));
    }

    #[test]
    fn candidates_rotate_and_demote_ejected_peers() {
        let gw = Gateway::bind(GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            peers: vec![
                "127.0.0.1:1".to_string(),
                "127.0.0.1:2".to_string(),
                "127.0.0.1:3".to_string(),
            ],
            failure_threshold: 1,
            ..GatewayConfig::default()
        })
        .unwrap();
        let state = &gw.state;
        let base = state.candidates("some-key", 0);
        assert_eq!(base.len(), 3);
        let rotated = state.candidates("some-key", 1);
        assert_eq!(rotated[0], base[1], "offset rotates the failover order");

        // Eject the owner: it must drop to the back, not vanish.
        let now = Instant::now();
        lock_unpoisoned(&state.peers[base[0]].breaker).record_failure(now);
        let after = state.candidates("some-key", 0);
        assert_eq!(after.len(), 3);
        assert_eq!(*after.last().unwrap(), base[0]);
        assert_eq!(after[0], base[1]);
    }
}
