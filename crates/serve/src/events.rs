//! `GET /debug/events`: replay the flight recorder.
//!
//! Both the daemon and the gateway keep an
//! [`EventLog`](ptmap_trace::obs::EventLog) — a bounded ring of the
//! most recent structured events, recorded as JSON lines regardless
//! of the stderr `--log-format`. This endpoint replays the last `n`
//! of them (default: everything buffered) as newline-delimited JSON,
//! so a post-mortem can see what the process was doing without
//! having had log shipping configured in advance.

use crate::http::Response;
use ptmap_trace::obs::EventLog;

/// Parses `n=<count>` out of a raw query string.
fn parse_limit(query: Option<&str>) -> usize {
    query
        .into_iter()
        .flat_map(|q| q.split('&'))
        .find_map(|kv| kv.strip_prefix("n="))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(usize::MAX)
}

/// Renders the last `n=` events (newest last) as an NDJSON response.
pub(crate) fn events_response(log: &EventLog, query: Option<&str>) -> Response {
    let lines = log.recent(parse_limit(query));
    let mut body = lines.join("\n");
    if !body.is_empty() {
        body.push('\n');
    }
    Response {
        status: 200,
        headers: Vec::new(),
        body: body.into_bytes(),
        content_type: "application/x-ndjson",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_trace::obs::{Level, LogFormat};
    use serde::Value;

    #[test]
    fn replays_last_n_as_ndjson() {
        let log = EventLog::new("test", Level::Debug, LogFormat::Json);
        for i in 0..5u64 {
            log.info("tick", None, "", &[("i", i.into())]);
        }
        let resp = events_response(&log, Some("n=2"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "application/x-ndjson");
        let body = String::from_utf8(resp.body).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let ev = serde_json::from_str::<Value>(line).expect("each line is JSON");
            assert_eq!(ev.get("event").and_then(|v| v.as_str()), Some("tick"));
        }
        let last = serde_json::from_str::<Value>(lines[1]).unwrap();
        assert_eq!(last.get("i").and_then(|v| v.as_u64()), Some(4));
    }

    #[test]
    fn empty_recorder_yields_empty_body() {
        let log = EventLog::new("test", Level::Info, LogFormat::Text);
        let resp = events_response(&log, None);
        assert!(resp.body.is_empty());
    }

    #[test]
    fn bad_or_missing_limit_means_everything() {
        let log = EventLog::new("test", Level::Debug, LogFormat::Json);
        for _ in 0..3 {
            log.info("tick", None, "", &[]);
        }
        for query in [None, Some("n=abc"), Some("other=1")] {
            let resp = events_response(&log, query);
            assert_eq!(String::from_utf8(resp.body).unwrap().lines().count(), 3);
        }
    }
}
