//! Service-level metrics and the Prometheus text rendering.
//!
//! The pipeline's [`Recorder`](ptmap_pipeline::Recorder) already
//! accumulates stage spans and counters for every compile; this module
//! adds what only the serving layer can know — per-endpoint request
//! counts and latency histograms, admission rejections, coalescing —
//! and renders everything in the Prometheus text exposition format
//! (version 0.0.4) for `GET /metrics`.
//!
//! Naming scheme: service metrics are `ptmap_http_*` / `ptmap_*`
//! gauges; pipeline spans become
//! `ptmap_stage_seconds_total{stage="..."}` (+ `_invocations_`), and
//! pipeline counters become `ptmap_pipeline_events_total{event="..."}`.

use crate::lock_unpoisoned;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Histogram bucket upper bounds, in seconds (plus an implicit +Inf).
const BUCKETS: [f64; 9] = [0.005, 0.025, 0.1, 0.25, 1.0, 2.5, 10.0, 30.0, 60.0];

/// A fixed-bucket latency histogram.
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS.len()],
    sum: f64,
    count: u64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, seconds: f64) {
        for (i, bound) in BUCKETS.iter().enumerate() {
            if seconds <= *bound {
                self.counts[i] += 1;
            }
        }
        self.sum += seconds;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Estimates the `q`-quantile (`0 < q <= 1`) from the cumulative
    /// bucket counts, interpolating linearly inside the owning bucket
    /// (the same estimator Prometheus's `histogram_quantile` applies
    /// server-side). Observations beyond the last finite bound clamp
    /// to that bound — the histogram cannot see past it. `None` with
    /// no observations or a `q` outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || q <= 0.0 || q > 1.0 {
            return None;
        }
        // 1-based rank of the target observation in sorted order.
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut prev_count = 0u64;
        let mut prev_bound = 0.0f64;
        for (i, bound) in BUCKETS.iter().enumerate() {
            let c = self.counts[i];
            if rank <= c {
                let in_bucket = (c - prev_count) as f64;
                let frac = if in_bucket == 0.0 {
                    1.0
                } else {
                    (rank - prev_count) as f64 / in_bucket
                };
                return Some(prev_bound + (bound - prev_bound) * frac);
            }
            prev_count = c;
            prev_bound = *bound;
        }
        Some(*BUCKETS.last().expect("BUCKETS is non-empty"))
    }
}

/// The quantiles surfaced as gauge series and in the drain summary.
pub(crate) const QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

/// Counters and histograms owned by the HTTP layer.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// (endpoint, status) → requests.
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    /// endpoint → latency histogram.
    latency: Mutex<BTreeMap<String, Histogram>>,
    /// Admission rejections by reason (`deadline`, `capacity`,
    /// `queue-full`, `draining`).
    rejects: Mutex<BTreeMap<String, u64>>,
    /// Underlying compiles started (leader flights).
    compiles: AtomicU64,
}

impl ServiceMetrics {
    /// A zeroed metrics registry.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics::default()
    }

    /// Records one handled request.
    pub fn observe_request(&self, endpoint: &str, status: u16, elapsed: Duration) {
        *lock_unpoisoned(&self.requests)
            .entry((endpoint.to_string(), status))
            .or_default() += 1;
        lock_unpoisoned(&self.latency)
            .entry(endpoint.to_string())
            .or_default()
            .observe(elapsed.as_secs_f64());
    }

    /// Records one admission rejection.
    pub fn reject(&self, reason: &str) {
        *lock_unpoisoned(&self.rejects)
            .entry(reason.to_string())
            .or_default() += 1;
    }

    /// Records the start of one underlying (leader) compile.
    pub fn compile_started(&self) {
        self.compiles.fetch_add(1, Ordering::Relaxed);
    }

    /// Underlying compiles started so far.
    pub fn compiles_total(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Total requests handled (any endpoint, any status).
    pub fn requests_total(&self) -> u64 {
        lock_unpoisoned(&self.requests).values().sum()
    }

    /// Per-endpoint `(endpoint, count, p50, p95, p99)` latency summary
    /// for the drain report on stderr.
    pub fn latency_quantiles(&self) -> Vec<(String, u64, f64, f64, f64)> {
        lock_unpoisoned(&self.latency)
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(endpoint, h)| {
                (
                    endpoint.clone(),
                    h.count(),
                    h.quantile(0.5).unwrap_or(0.0),
                    h.quantile(0.95).unwrap_or(0.0),
                    h.quantile(0.99).unwrap_or(0.0),
                )
            })
            .collect()
    }
}

/// Point-in-time service gauges fed into [`render`].
#[derive(Debug, Default, Clone)]
pub struct ServiceGauges {
    /// Jobs waiting in the async queue.
    pub queue_depth: usize,
    /// Leader compiles currently running.
    pub inflight_compiles: usize,
    /// Flights currently in the coalescer table.
    pub flights_in_flight: usize,
    /// Total coalesced (follower) requests.
    pub coalesced_total: u64,
    /// Async worker threads alive.
    pub workers_alive: usize,
    /// Whether the server is draining.
    pub draining: bool,
    /// Report-cache hits / misses / quarantines since boot.
    pub cache_hits: u64,
    /// See `cache_hits`.
    pub cache_misses: u64,
    /// See `cache_hits`.
    pub cache_quarantines: u64,
    /// Entries resident in the in-memory cache map.
    pub cache_entries: usize,
    /// Compile traces retained in the ring buffer.
    pub trace_entries: usize,
}

/// Escapes a Prometheus label value.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a float the Prometheus text parser accepts.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}") // keep a decimal point: `2.0`, not `2`
    } else {
        format!("{v}")
    }
}

/// Unix timestamp captured the first time it is asked for. Both bind
/// paths touch it at boot, so by the time `/metrics` is scraped it
/// reflects (approximately) when the process started.
pub(crate) fn process_start_seconds() -> f64 {
    static START: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *START.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
    })
}

/// Build identity and process start gauges, shared by the daemon's
/// `/metrics` and the gateway's (via [`render_http_sections`], which
/// each document includes exactly once).
pub(crate) fn render_build_info(out: &mut String) {
    out.push_str("# HELP ptmap_build_info Build identity (constant 1).\n");
    out.push_str("# TYPE ptmap_build_info gauge\n");
    let _ = writeln!(
        out,
        "ptmap_build_info{{version=\"{}\",git_sha=\"{}\"}} 1",
        escape_label(env!("CARGO_PKG_VERSION")),
        escape_label(option_env!("PTMAP_GIT_SHA").unwrap_or("unknown"))
    );
    out.push_str("# HELP ptmap_process_start_time_seconds Unix time the process started.\n");
    out.push_str("# TYPE ptmap_process_start_time_seconds gauge\n");
    let _ = writeln!(
        out,
        "ptmap_process_start_time_seconds {}",
        fmt_f64(process_start_seconds())
    );
}

/// Renders the HTTP-layer sections (request counters, latency
/// histograms + quantiles, admission rejects) shared by the daemon's
/// `/metrics` and the gateway's, prefixed by the build-identity
/// gauges every service exports.
pub(crate) fn render_http_sections(service: &ServiceMetrics, out: &mut String) {
    render_build_info(out);
    out.push_str("# HELP ptmap_http_requests_total HTTP requests handled.\n");
    out.push_str("# TYPE ptmap_http_requests_total counter\n");
    let requests = lock_unpoisoned(&service.requests).clone();
    for ((endpoint, status), n) in &requests {
        let _ = writeln!(
            out,
            "ptmap_http_requests_total{{endpoint=\"{}\",code=\"{status}\"}} {n}",
            escape_label(endpoint)
        );
    }

    out.push_str("# HELP ptmap_http_request_seconds Request latency by endpoint.\n");
    out.push_str("# TYPE ptmap_http_request_seconds histogram\n");
    let latency = lock_unpoisoned(&service.latency).clone();
    for (endpoint, hist) in &latency {
        let ep = escape_label(endpoint);
        for (i, bound) in BUCKETS.iter().enumerate() {
            let _ = writeln!(
                out,
                "ptmap_http_request_seconds_bucket{{endpoint=\"{ep}\",le=\"{}\"}} {}",
                fmt_f64(*bound),
                hist.counts[i]
            );
        }
        let _ = writeln!(
            out,
            "ptmap_http_request_seconds_bucket{{endpoint=\"{ep}\",le=\"+Inf\"}} {}",
            hist.count
        );
        let _ = writeln!(
            out,
            "ptmap_http_request_seconds_sum{{endpoint=\"{ep}\"}} {}",
            fmt_f64(hist.sum)
        );
        let _ = writeln!(
            out,
            "ptmap_http_request_seconds_count{{endpoint=\"{ep}\"}} {}",
            hist.count
        );
    }

    out.push_str(
        "# HELP ptmap_http_request_quantile_seconds Estimated request latency quantiles \
         by endpoint (bucket-interpolated).\n",
    );
    out.push_str("# TYPE ptmap_http_request_quantile_seconds gauge\n");
    for (endpoint, hist) in &latency {
        let ep = escape_label(endpoint);
        for q in QUANTILES {
            if let Some(v) = hist.quantile(q) {
                let _ = writeln!(
                    out,
                    "ptmap_http_request_quantile_seconds{{endpoint=\"{ep}\",quantile=\"{q}\"}} {}",
                    fmt_f64(v)
                );
            }
        }
    }

    out.push_str("# HELP ptmap_admission_rejects_total Requests refused at admission.\n");
    out.push_str("# TYPE ptmap_admission_rejects_total counter\n");
    let rejects = lock_unpoisoned(&service.rejects).clone();
    for (reason, n) in &rejects {
        let _ = writeln!(
            out,
            "ptmap_admission_rejects_total{{reason=\"{}\"}} {n}",
            escape_label(reason)
        );
    }
}

/// Renders the full `/metrics` document.
pub fn render(
    service: &ServiceMetrics,
    gauges: &ServiceGauges,
    spans: &BTreeMap<String, ptmap_pipeline::SpanStat>,
    counters: &BTreeMap<String, u64>,
) -> String {
    let mut out = String::new();
    render_http_sections(service, &mut out);

    out.push_str(
        "# HELP ptmap_coalesced_requests_total Requests served by attaching to an \
         in-flight compile.\n",
    );
    out.push_str("# TYPE ptmap_coalesced_requests_total counter\n");
    let _ = writeln!(
        out,
        "ptmap_coalesced_requests_total {}",
        gauges.coalesced_total
    );

    out.push_str("# HELP ptmap_compiles_started_total Underlying (leader) compiles started.\n");
    out.push_str("# TYPE ptmap_compiles_started_total counter\n");
    let _ = writeln!(
        out,
        "ptmap_compiles_started_total {}",
        service.compiles_total()
    );

    for (name, help, value) in [
        (
            "ptmap_queue_depth",
            "Async jobs waiting in the bounded queue.",
            gauges.queue_depth as u64,
        ),
        (
            "ptmap_inflight_compiles",
            "Leader compiles currently running.",
            gauges.inflight_compiles as u64,
        ),
        (
            "ptmap_inflight_flights",
            "Coalesced flights currently in the table.",
            gauges.flights_in_flight as u64,
        ),
        (
            "ptmap_workers_alive",
            "Async worker threads alive.",
            gauges.workers_alive as u64,
        ),
        (
            "ptmap_draining",
            "1 while the server is draining for shutdown.",
            u64::from(gauges.draining),
        ),
        (
            "ptmap_cache_entries",
            "Reports resident in the in-memory cache.",
            gauges.cache_entries as u64,
        ),
        (
            "ptmap_trace_store_entries",
            "Compile traces retained in the ring buffer.",
            gauges.trace_entries as u64,
        ),
    ] {
        let _ = writeln!(
            out,
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}"
        );
    }

    for (name, help, value) in [
        (
            "ptmap_cache_hits_total",
            "Report-cache hits since boot.",
            gauges.cache_hits,
        ),
        (
            "ptmap_cache_misses_total",
            "Report-cache misses since boot.",
            gauges.cache_misses,
        ),
        (
            "ptmap_cache_quarantines_total",
            "Corrupt disk cache entries quarantined since boot.",
            gauges.cache_quarantines,
        ),
    ] {
        let _ = writeln!(
            out,
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}"
        );
    }

    out.push_str("# HELP ptmap_stage_seconds_total Pipeline span time by stage.\n");
    out.push_str("# TYPE ptmap_stage_seconds_total counter\n");
    for (stage, stat) in spans {
        let _ = writeln!(
            out,
            "ptmap_stage_seconds_total{{stage=\"{}\"}} {}",
            escape_label(stage),
            fmt_f64(stat.seconds)
        );
    }
    out.push_str("# HELP ptmap_stage_invocations_total Pipeline span entries by stage.\n");
    out.push_str("# TYPE ptmap_stage_invocations_total counter\n");
    for (stage, stat) in spans {
        let _ = writeln!(
            out,
            "ptmap_stage_invocations_total{{stage=\"{}\"}} {}",
            escape_label(stage),
            stat.count
        );
    }

    out.push_str("# HELP ptmap_pipeline_events_total Pipeline counters (cache, retries, jobs).\n");
    out.push_str("# TYPE ptmap_pipeline_events_total counter\n");
    for (event, n) in counters {
        let _ = writeln!(
            out,
            "ptmap_pipeline_events_total{{event=\"{}\"}} {n}",
            escape_label(event)
        );
    }
    out
}

/// Parses a Prometheus label set body (the text between `{` and `}`)
/// into `(name, value)` pairs, enforcing the text format's escaping
/// rules: label values may contain only the `\\`, `\"`, and `\n`
/// escapes, and a bare `"` inside a value is a syntax error.
fn parse_label_set(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut name = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            name.push(c);
        }
        let valid_name = !name.is_empty()
            && name
                .chars()
                .enumerate()
                .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()));
        if !valid_name {
            return Err(format!("bad label name {name:?}"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label {name} value must be quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                None => return Err(format!("unterminated value for label {name}")),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape \\{other:?} in label {name}")),
                },
                Some(c) => value.push(c),
            }
        }
        labels.push((name, value));
        match chars.next() {
            None => return Ok(labels),
            Some(',') => continue,
            Some(c) => return Err(format!("expected ',' between labels, found {c:?}")),
        }
    }
}

/// Validates Prometheus text-format syntax line by line; returns the
/// first offence. Used by tests and the CI smoke check — kept in the
/// library so both share one definition of "parses". Beyond per-line
/// syntax it enforces two cross-line properties:
///
/// * a metric name must not be introduced by two `# HELP` lines
///   (Prometheus treats the exposition as corrupt);
/// * within one metric and one label set, series that differ only in
///   their `quantile` label must be non-decreasing in value as the
///   quantile grows — a p95 below the p50 can only be an estimator or
///   rendering bug.
pub fn check_prometheus_text(text: &str) -> Result<(), String> {
    let mut help_seen: Vec<String> = Vec::new();
    // (metric name + non-quantile labels) → [(quantile, value)]
    let mut quantile_series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with("# TYPE ") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("").to_string();
            if help_seen.contains(&name) {
                return Err(format!("duplicate HELP for {name:?}"));
            }
            help_seen.push(name);
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            return Err(format!("no value: {line:?}"));
        };
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "-Inf" && value != "NaN" {
            return Err(format!("bad value {value:?} in {line:?}"));
        }
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        let valid_name = !name.is_empty()
            && name.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            });
        if !valid_name {
            return Err(format!("bad metric name {name:?} in {line:?}"));
        }
        if name_end < series.len() {
            if !series.ends_with('}') {
                return Err(format!("unclosed label set: {line:?}"));
            }
            let body = &series[name_end + 1..series.len() - 1];
            let labels = parse_label_set(body).map_err(|e| format!("{e} in {line:?}"))?;
            let quantile = labels
                .iter()
                .find(|(n, _)| n == "quantile")
                .and_then(|(_, v)| v.parse::<f64>().ok());
            if let (Some(q), Ok(v)) = (quantile, value.parse::<f64>()) {
                let mut key = name.to_string();
                for (n, v) in &labels {
                    if n != "quantile" {
                        key.push_str(&format!(",{n}={v:?}"));
                    }
                }
                quantile_series.entry(key).or_default().push((q, v));
            }
        }
    }
    for (key, mut points) in quantile_series {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in points.windows(2) {
            if pair[1].1 < pair[0].1 {
                return Err(format!(
                    "quantiles not monotone for {key}: q{} = {} > q{} = {}",
                    pair[0].0, pair[0].1, pair[1].0, pair[1].1
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::default();
        h.observe(0.001);
        h.observe(0.05);
        h.observe(120.0); // beyond the last bound: only +Inf (count)
        assert_eq!(h.count(), 3);
        assert_eq!(h.counts[0], 1, "0.005 bucket");
        assert_eq!(h.counts[2], 2, "0.1 bucket holds both finite obs");
        assert_eq!(h.counts[BUCKETS.len() - 1], 2, "60s bucket excludes 120s");
        assert!((h.sum - 120.051).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_interpolate_and_clamp() {
        let empty = Histogram::default();
        assert_eq!(empty.quantile(0.5), None, "no data, no estimate");

        let mut h = Histogram::default();
        for _ in 0..100 {
            h.observe(0.05); // all land in the (0.025, 0.1] bucket
        }
        let p50 = h.quantile(0.5).expect("observations present");
        assert!(p50 > 0.025 && p50 <= 0.1, "p50 {p50} outside owning bucket");

        // Observations beyond the last finite bound clamp to it.
        let mut far = Histogram::default();
        far.observe(500.0);
        assert_eq!(far.quantile(0.99), Some(60.0));

        // Quantiles are monotone in q.
        let mut spread = Histogram::default();
        for i in 0..50 {
            spread.observe(0.002 * i as f64);
        }
        let q = |p: f64| spread.quantile(p).unwrap();
        assert!(q(0.5) <= q(0.95));
        assert!(q(0.95) <= q(0.99));
    }

    #[test]
    fn checker_rejects_duplicate_help() {
        let text = "# HELP m one\n# TYPE m counter\nm 1\n# HELP m again\n";
        let err = check_prometheus_text(text).unwrap_err();
        assert!(err.contains("duplicate HELP"), "{err}");
    }

    #[test]
    fn checker_rejects_bad_label_escapes() {
        // \t is not a sanctioned escape in the text format.
        assert!(check_prometheus_text(r#"m{l="a\t"} 1"#).is_err());
        // An unescaped quote inside a value ends it early.
        assert!(check_prometheus_text(r#"m{l="a"b"} 1"#).is_err());
        // The three sanctioned escapes all pass.
        assert!(check_prometheus_text(r#"m{l="a\"b\\c\n"} 1"#).is_ok());
        // Label names follow metric-name rules.
        assert!(check_prometheus_text(r#"m{9bad="x"} 1"#).is_err());
    }

    #[test]
    fn checker_rejects_non_monotone_quantiles() {
        let bad = "m{endpoint=\"c\",quantile=\"0.5\"} 2.0\n\
                   m{endpoint=\"c\",quantile=\"0.95\"} 1.0\n";
        let err = check_prometheus_text(bad).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
        // Series differing in other labels are independent groups.
        let ok = "m{endpoint=\"a\",quantile=\"0.5\"} 2.0\n\
                  m{endpoint=\"b\",quantile=\"0.95\"} 1.0\n";
        assert!(check_prometheus_text(ok).is_ok());
    }

    #[test]
    fn render_is_valid_prometheus_text() {
        let service = ServiceMetrics::new();
        service.observe_request("compile", 200, Duration::from_millis(30));
        service.observe_request("compile", 504, Duration::from_millis(1));
        service.observe_request("metrics", 200, Duration::from_micros(90));
        service.reject("deadline");
        service.compile_started();
        let gauges = ServiceGauges {
            queue_depth: 2,
            inflight_compiles: 1,
            coalesced_total: 3,
            workers_alive: 4,
            cache_hits: 7,
            ..ServiceGauges::default()
        };
        let mut spans = BTreeMap::new();
        spans.insert(
            "map".to_string(),
            ptmap_pipeline::SpanStat {
                seconds: 1.25,
                count: 4,
                min_seconds: 0.05,
                max_seconds: 0.75,
            },
        );
        let mut counters = BTreeMap::new();
        counters.insert("jobs_ok".to_string(), 9u64);
        let text = render(&service, &gauges, &spans, &counters);

        check_prometheus_text(&text).expect("must parse");
        assert!(text.contains("ptmap_http_requests_total{endpoint=\"compile\",code=\"200\"} 1"));
        assert!(text.contains("ptmap_http_requests_total{endpoint=\"compile\",code=\"504\"} 1"));
        assert!(
            text.contains("ptmap_http_request_seconds_bucket{endpoint=\"compile\",le=\"+Inf\"} 2")
        );
        assert!(text.contains(
            "ptmap_http_request_quantile_seconds{endpoint=\"compile\",quantile=\"0.5\"}"
        ));
        assert!(text.contains(
            "ptmap_http_request_quantile_seconds{endpoint=\"compile\",quantile=\"0.99\"}"
        ));
        assert!(text.contains("ptmap_coalesced_requests_total 3"));
        assert!(text.contains("ptmap_compiles_started_total 1"));
        assert!(text.contains("ptmap_admission_rejects_total{reason=\"deadline\"} 1"));
        assert!(text.contains("ptmap_queue_depth 2"));
        assert!(text.contains("ptmap_workers_alive 4"));
        assert!(text.contains("ptmap_cache_hits_total 7"));
        assert!(text.contains("ptmap_stage_seconds_total{stage=\"map\"} 1.25"));
        assert!(text.contains("ptmap_stage_invocations_total{stage=\"map\"} 4"));
        assert!(text.contains("ptmap_pipeline_events_total{event=\"jobs_ok\"} 9"));
    }

    #[test]
    fn empty_registry_still_renders_headline_counters() {
        // CI scrapes for presence; zero-valued singletons must render.
        let text = render(
            &ServiceMetrics::new(),
            &ServiceGauges::default(),
            &BTreeMap::new(),
            &BTreeMap::new(),
        );
        check_prometheus_text(&text).expect("must parse");
        assert!(text.contains("ptmap_coalesced_requests_total 0"));
        assert!(text.contains("ptmap_compiles_started_total 0"));
        assert!(text.contains("ptmap_queue_depth 0"));
        assert!(text.contains("ptmap_trace_store_entries 0"));
    }

    #[test]
    fn checker_rejects_malformed_lines() {
        assert!(check_prometheus_text("just words without value structure").is_err());
        assert!(check_prometheus_text("metric_name not-a-number").is_err());
        assert!(check_prometheus_text("9bad_name 1").is_err());
        assert!(check_prometheus_text("unclosed{label=\"x\" 1").is_err());
        assert!(check_prometheus_text("ok_name{label=\"x\"} 1\nok_plain 2.5").is_ok());
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(0.005), "0.005");
        assert_eq!(fmt_f64(1.25), "1.25");
    }
}
