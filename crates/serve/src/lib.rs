//! `ptmap-serve`: the long-running compile daemon.
//!
//! A one-shot `ptmap batch` process pays cache warm-up, manifest
//! parsing, and thread-pool spin-up on every invocation. This crate
//! keeps one [`ReportCache`](ptmap_pipeline::ReportCache), one
//! [`Recorder`](ptmap_pipeline::Recorder), and one worker pool resident
//! behind a hand-rolled (std-only, no tokio/hyper) HTTP/1.1 server:
//!
//! | Endpoint          | Semantics                                          |
//! |-------------------|----------------------------------------------------|
//! | `POST /compile`   | synchronous compile of one job spec                |
//! | `POST /jobs`      | async submit into a bounded queue (`202` + id)     |
//! | `GET /jobs/<id>`  | poll an async job (`queued`/`running`/`done`)      |
//! | `GET /jobs/<id>/trace` | Chrome trace-event JSON for a retained trace  |
//! | `GET /metrics`    | Prometheus text: pipeline spans/counters + service |
//! | `GET /debug/events` | flight recorder: last N structured events (NDJSON) |
//! | `GET /healthz`    | readiness (cache dir writable, workers alive)      |
//!
//! Three properties make it a *service* rather than a socket in front
//! of the batch CLI:
//!
//! * **Request coalescing** ([`coalesce`]) — identical concurrent
//!   requests (same [`request_key`](ptmap_pipeline::request_key)) share
//!   one underlying compile; N waiters, one mapper run.
//! * **Governor-backed admission control** — every request derives a
//!   [`Budget`](ptmap_governor::Budget) scope from its
//!   `X-Ptmap-Deadline-Ms` header and the server defaults; an expired
//!   deadline is rejected at admission without occupying a worker, a
//!   client disconnect cancels the scope (unless other waiters are
//!   coalesced onto it), and a hung mapper run dies at the deadline
//!   instead of pinning a worker forever.
//! * **Graceful drain** — SIGTERM/ctrl-c stops accepting, finishes (or
//!   cancels, after the drain timeout, via the server-wide root budget)
//!   everything in flight, flushes metrics, and exits 0.

pub mod client;
pub mod coalesce;
pub(crate) mod events;
pub mod gateway;
pub mod http;
pub mod jobs;
pub mod loadtest;
pub mod metrics;
pub mod server;
pub mod shard;
pub mod signal;
pub mod traces;

pub use coalesce::Coalescer;
pub use gateway::{Gateway, GatewayConfig, GatewayHandle, GatewaySummary};
pub use jobs::{JobState, JobTable};
pub use loadtest::{run_loadtest, LoadtestConfig, LoadtestReport};
pub use metrics::ServiceMetrics;
pub use server::{DrainSummary, ServeConfig, Server, ServerHandle};
pub use shard::{Breaker, BreakerState, HashRing};
pub use traces::TraceStore;

/// Locks a mutex, recovering from poisoning: the daemon's shared maps
/// (flights, job states, histograms) stay valid across any interrupted
/// mutation, so one panicking request must not poison them for the
/// rest of the process lifetime.
pub(crate) fn lock_unpoisoned<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
