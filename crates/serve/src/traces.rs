//! Ring-buffered in-memory trace store behind `GET /jobs/<id>/trace`.
//!
//! Every leader compile that the sampling policy keeps (plus every
//! compile whose client supplied an `X-Ptmap-Trace-Id`, and every
//! compile slower than the slow-compile threshold) deposits its span
//! tree here, both as the raw [`Trace`] and as rendered Chrome
//! trace-event JSON. The raw tree is what the gateway fetches (via
//! `GET /jobs/<id>/trace?format=raw`) to stitch a cluster-wide trace;
//! the rendered document serves direct viewer requests. The store is
//! a bounded FIFO: a long-lived daemon holds at most
//! [`TRACE_RETENTION`] traces and evicts the oldest, so memory stays
//! bounded no matter the request rate — the store is a flight
//! recorder, not an archive.
//!
//! Lookup is by trace id (the value round-tripped in the
//! `X-Ptmap-Trace-Id` response header). Numeric async-job ids are
//! resolved to a trace id through the job table's completed outcome
//! before reaching this store.

use crate::lock_unpoisoned;
use ptmap_trace::{chrome_trace_json, Trace};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// How many traces the ring buffer retains before evicting the oldest.
pub const TRACE_RETENTION: usize = 256;

/// One retained trace: the id, the compile's display name, the raw
/// span tree, and the fully rendered Chrome trace-event JSON document.
/// Both payloads sit behind `Arc`s so handing them to a response (or
/// the stitcher) never copies under the store lock.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// The trace id (`X-Ptmap-Trace-Id`).
    pub trace_id: String,
    /// The compile's display name (job name).
    pub name: String,
    /// The raw span tree, for stitching.
    pub raw: Arc<Trace>,
    /// Rendered Chrome trace-event JSON.
    pub chrome_json: Arc<String>,
}

/// The bounded FIFO of retained traces.
#[derive(Debug, Default)]
pub struct TraceStore {
    inner: Mutex<VecDeque<StoredTrace>>,
    cap: usize,
}

impl TraceStore {
    /// A store retaining at most [`TRACE_RETENTION`] traces.
    pub fn new() -> TraceStore {
        TraceStore::with_capacity(TRACE_RETENTION)
    }

    /// A store with an explicit retention bound (tests).
    pub fn with_capacity(cap: usize) -> TraceStore {
        TraceStore {
            inner: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
        }
    }

    /// Renders and inserts a finished trace, evicting the oldest
    /// beyond capacity. Re-inserting an id (a client replaying its
    /// own trace id) replaces the older entry rather than
    /// duplicating it.
    pub fn insert(&self, trace: Trace) {
        let chrome_json = chrome_trace_json(&trace);
        let mut inner = lock_unpoisoned(&self.inner);
        inner.retain(|t| t.trace_id != trace.trace_id);
        inner.push_back(StoredTrace {
            trace_id: trace.trace_id.clone(),
            name: trace.name.clone(),
            raw: Arc::new(trace),
            chrome_json: Arc::new(chrome_json),
        });
        while inner.len() > self.cap {
            inner.pop_front();
        }
    }

    /// Looks up a trace by its id.
    pub fn by_trace_id(&self, trace_id: &str) -> Option<StoredTrace> {
        lock_unpoisoned(&self.inner)
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// Traces currently retained.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).len()
    }

    /// Whether the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_trace::Tracer;

    fn trace(id: &str, name: &str) -> Trace {
        let t = Tracer::root_with_id(name, id);
        {
            let _root = t.span("compile");
        }
        t.finish().unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let s = TraceStore::new();
        assert!(s.is_empty());
        s.insert(trace("aa11", "gemm:16@S4"));
        let t = s.by_trace_id("aa11").expect("stored");
        assert_eq!(t.name, "gemm:16@S4");
        assert!(t.chrome_json.contains("traceEvents"));
        assert_eq!(t.raw.trace_id, "aa11");
        assert_eq!(t.raw.spans.len(), 1);
        assert!(s.by_trace_id("missing").is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest() {
        let s = TraceStore::with_capacity(3);
        for i in 0..5 {
            s.insert(trace(&format!("id{i}"), &format!("job{i}")));
        }
        assert_eq!(s.len(), 3);
        assert!(s.by_trace_id("id0").is_none(), "oldest evicted");
        assert!(s.by_trace_id("id1").is_none());
        assert!(s.by_trace_id("id2").is_some());
        assert!(s.by_trace_id("id4").is_some());
    }

    #[test]
    fn reinsert_replaces_not_duplicates() {
        let s = TraceStore::with_capacity(4);
        s.insert(trace("same", "first"));
        s.insert(trace("same", "second"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.by_trace_id("same").unwrap().name, "second");
    }
}
