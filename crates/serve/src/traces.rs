//! Ring-buffered in-memory trace store behind `GET /jobs/<id>/trace`.
//!
//! Every leader compile that the sampling policy keeps (plus every
//! compile whose client supplied an `X-Ptmap-Trace-Id`, and every
//! compile slower than the slow-compile threshold) deposits its
//! rendered Chrome trace-event JSON here. The store is a bounded FIFO:
//! a long-lived daemon holds at most [`TRACE_RETENTION`] traces and
//! evicts the oldest, so memory stays bounded no matter the request
//! rate — the store is a flight recorder, not an archive.
//!
//! Lookup is by trace id (the value round-tripped in the
//! `X-Ptmap-Trace-Id` response header). Numeric async-job ids are
//! resolved to a trace id through the job table's completed outcome
//! before reaching this store.

use crate::lock_unpoisoned;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// How many traces the ring buffer retains before evicting the oldest.
pub const TRACE_RETENTION: usize = 256;

/// One retained trace: the id, the compile's display name, and the
/// fully rendered Chrome trace-event JSON document. The JSON is behind
/// an `Arc` so handing it to a response never copies the (potentially
/// large) document under the store lock.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// The trace id (`X-Ptmap-Trace-Id`).
    pub trace_id: String,
    /// The compile's display name (job name).
    pub name: String,
    /// Rendered Chrome trace-event JSON.
    pub chrome_json: Arc<String>,
}

/// The bounded FIFO of retained traces.
#[derive(Debug, Default)]
pub struct TraceStore {
    inner: Mutex<VecDeque<StoredTrace>>,
    cap: usize,
}

impl TraceStore {
    /// A store retaining at most [`TRACE_RETENTION`] traces.
    pub fn new() -> TraceStore {
        TraceStore::with_capacity(TRACE_RETENTION)
    }

    /// A store with an explicit retention bound (tests).
    pub fn with_capacity(cap: usize) -> TraceStore {
        TraceStore {
            inner: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
        }
    }

    /// Inserts a rendered trace, evicting the oldest beyond capacity.
    /// Re-inserting an id (a client replaying its own trace id)
    /// replaces the older entry rather than duplicating it.
    pub fn insert(&self, trace_id: String, name: String, chrome_json: String) {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.retain(|t| t.trace_id != trace_id);
        inner.push_back(StoredTrace {
            trace_id,
            name,
            chrome_json: Arc::new(chrome_json),
        });
        while inner.len() > self.cap {
            inner.pop_front();
        }
    }

    /// Looks up a trace by its id.
    pub fn by_trace_id(&self, trace_id: &str) -> Option<StoredTrace> {
        lock_unpoisoned(&self.inner)
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// Traces currently retained.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).len()
    }

    /// Whether the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let s = TraceStore::new();
        assert!(s.is_empty());
        s.insert(
            "aa11".into(),
            "gemm:16@S4".into(),
            "{\"traceEvents\":[]}".into(),
        );
        let t = s.by_trace_id("aa11").expect("stored");
        assert_eq!(t.name, "gemm:16@S4");
        assert!(t.chrome_json.contains("traceEvents"));
        assert!(s.by_trace_id("missing").is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest() {
        let s = TraceStore::with_capacity(3);
        for i in 0..5 {
            s.insert(format!("id{i}"), format!("job{i}"), "{}".into());
        }
        assert_eq!(s.len(), 3);
        assert!(s.by_trace_id("id0").is_none(), "oldest evicted");
        assert!(s.by_trace_id("id1").is_none());
        assert!(s.by_trace_id("id2").is_some());
        assert!(s.by_trace_id("id4").is_some());
    }

    #[test]
    fn reinsert_replaces_not_duplicates() {
        let s = TraceStore::with_capacity(4);
        s.insert("same".into(), "first".into(), "{}".into());
        s.insert("same".into(), "second".into(), "{}".into());
        assert_eq!(s.len(), 1);
        assert_eq!(s.by_trace_id("same").unwrap().name, "second");
    }
}
