//! `ptmap loadtest`: a closed-loop load generator for one daemon or a
//! gateway.
//!
//! Each of `workers` threads runs a closed loop — send one `POST
//! /compile`, wait for the full response, classify it, repeat — until
//! the shared request budget is spent. Closed-loop means concurrency
//! is bounded by the worker count, so the tool measures the service's
//! latency under a fixed offered parallelism rather than melting it
//! with an open firehose.
//!
//! The kernel sequence is a pure function of `seed`: request *i*
//! compiles `vecsum:<N>` with `N` drawn from `hash64(seed, i)` over
//! `distinct` variants. A fixed seed therefore produces the same
//! multiset of request keys on every run — which is what lets the CI
//! chaos test compare runs and lets a gateway's consistent-hash
//! routing be exercised deterministically.
//!
//! Failures are bucketed into a small taxonomy rather than counted as
//! one "errors" blob: transport classes from [`ClientError::class`]
//! (`connect`, `io`, `malformed`, `deadline`) and HTTP classes
//! (`http-4xx`, `http-500`, `http-502`, `http-503`, `http-504`), so a
//! run's report distinguishes "the cluster shed load" from "the
//! cluster broke".

use crate::client::{self, ClientError};
use crate::metrics::Histogram;
use crate::shard::hash64;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a loadtest run is configured.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Target address (`host:port` of a daemon or gateway).
    pub target: String,
    /// Closed-loop worker threads.
    pub workers: usize,
    /// Total requests across all workers.
    pub requests: u64,
    /// Seed for the deterministic kernel sequence.
    pub seed: u64,
    /// Distinct kernel variants (distinct request keys) to cycle.
    pub distinct: u64,
    /// Per-request `X-Ptmap-Deadline-Ms` (`None` = server default).
    pub deadline_ms: Option<u64>,
}

impl Default for LoadtestConfig {
    fn default() -> LoadtestConfig {
        LoadtestConfig {
            target: "127.0.0.1:7199".to_string(),
            workers: 4,
            requests: 100,
            seed: 42,
            distinct: 8,
            deadline_ms: Some(30_000),
        }
    }
}

/// What a loadtest run measured.
#[derive(Debug)]
pub struct LoadtestReport {
    /// Requests sent.
    pub sent: u64,
    /// Requests answered `200`.
    pub ok: u64,
    /// Failures by taxonomy class.
    pub errors: BTreeMap<String, u64>,
    /// End-to-end request latency.
    pub latency: Histogram,
    /// Latency exemplars: the slowest requests of the run, slowest
    /// first, each with the `X-Ptmap-Trace-Id` the service answered
    /// with (when it did) — the handle to pull the exact distributed
    /// trace behind a tail-latency outlier.
    pub exemplars: Vec<Exemplar>,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
}

/// One tail-latency exemplar: a slow request and its trace id.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// End-to-end latency of the request, in seconds.
    pub seconds: f64,
    /// The `X-Ptmap-Trace-Id` response header, if the service sent
    /// one (transport failures have none).
    pub trace_id: Option<String>,
}

impl LoadtestReport {
    /// Total failed requests, any class.
    pub fn failed(&self) -> u64 {
        self.errors.values().sum()
    }

    /// Human-readable summary (one line per fact; stable prefixes for
    /// the CI smoke test to grep).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("loadtest sent: {}\n", self.sent));
        out.push_str(&format!("loadtest ok: {}\n", self.ok));
        out.push_str(&format!("loadtest failed: {}\n", self.failed()));
        for (class, n) in &self.errors {
            out.push_str(&format!("loadtest error {class}: {n}\n"));
        }
        for (q, label) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
            if let Some(v) = self.latency.quantile(q) {
                out.push_str(&format!("loadtest latency {label}: {v:.4}s\n"));
            }
        }
        for ex in &self.exemplars {
            out.push_str(&format!(
                "loadtest slowest: {:.4}s trace={}\n",
                ex.seconds,
                ex.trace_id.as_deref().unwrap_or("-")
            ));
        }
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            out.push_str(&format!(
                "loadtest throughput: {:.1} req/s over {secs:.2}s\n",
                self.sent as f64 / secs
            ));
        }
        out
    }
}

/// How many exemplars a run of `requests` reports: roughly the p99
/// tail, at least one, never more than eight.
fn exemplar_count(requests: u64) -> usize {
    ((requests / 100).clamp(1, 8)) as usize
}

/// The spec for request `i` of a seeded run.
fn spec_for(seed: u64, i: u64, distinct: u64) -> String {
    let variant = hash64(format!("loadtest:{seed}:{i}").as_bytes()) % distinct.max(1);
    // Small vecsum sizes keep each compile cheap; distinct sizes give
    // distinct request keys (and therefore distinct ring positions).
    let n = 4 + variant;
    format!("{{\"name\":\"lt-{variant}\",\"kernel\":\"vecsum:{n}\",\"arch\":\"S4\"}}")
}

/// Classifies one exchange for the error taxonomy. `None` = success.
fn classify(result: &Result<u16, ClientError>) -> Option<String> {
    match result {
        Ok(200) => None,
        Ok(status @ 400..=499) => Some(format!("http-4xx ({status})")),
        Ok(status) => Some(format!("http-{status}")),
        Err(e) => Some(e.class().to_string()),
    }
}

/// Runs the closed loop and gathers the report.
pub fn run_loadtest(config: &LoadtestConfig) -> LoadtestReport {
    let next = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(Mutex::new(BTreeMap::<String, u64>::new()));
    let latency = Arc::new(Mutex::new(Histogram::default()));
    let samples = Arc::new(Mutex::new(Vec::<Exemplar>::new()));
    let ok = Arc::new(AtomicU64::new(0));
    let sent = Arc::new(AtomicU64::new(0));

    let t0 = Instant::now();
    let mut threads = Vec::new();
    for _ in 0..config.workers.max(1) {
        let config = config.clone();
        let next = Arc::clone(&next);
        let errors = Arc::clone(&errors);
        let latency = Arc::clone(&latency);
        let samples = Arc::clone(&samples);
        let ok = Arc::clone(&ok);
        let sent = Arc::clone(&sent);
        threads.push(
            std::thread::Builder::new()
                .name("ptmap-loadtest".to_string())
                .spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= config.requests {
                        break;
                    }
                    let body = spec_for(config.seed, i, config.distinct);
                    let deadline_header = config.deadline_ms.map(|ms| ms.to_string());
                    let mut headers: Vec<(&str, &str)> = vec![("Content-Type", "application/json")];
                    if let Some(ms) = &deadline_header {
                        headers.push(("X-Ptmap-Deadline-Ms", ms));
                    }
                    let deadline = config.deadline_ms.map(|ms| {
                        Instant::now() + Duration::from_millis(ms) + Duration::from_secs(5)
                    });
                    let t = Instant::now();
                    let exchange = client::request(
                        &config.target,
                        "POST",
                        "/compile",
                        &headers,
                        body.as_bytes(),
                        deadline,
                    );
                    let elapsed = t.elapsed();
                    let trace_id = exchange
                        .as_ref()
                        .ok()
                        .and_then(|resp| resp.header("x-ptmap-trace-id"))
                        .map(str::to_string);
                    let result = exchange.map(|resp| resp.status);
                    sent.fetch_add(1, Ordering::Relaxed);
                    crate::lock_unpoisoned(&latency).observe(elapsed.as_secs_f64());
                    crate::lock_unpoisoned(&samples).push(Exemplar {
                        seconds: elapsed.as_secs_f64(),
                        trace_id,
                    });
                    match classify(&result) {
                        None => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(class) => {
                            *crate::lock_unpoisoned(&errors).entry(class).or_default() += 1;
                        }
                    }
                })
                .expect("spawn loadtest worker"),
        );
    }
    for t in threads {
        let _ = t.join();
    }

    // The p99 tail: sort all samples slowest-first and keep the top
    // handful, preferring ones that carry a trace id over equal-speed
    // ones that do not (an id makes the exemplar actionable).
    let mut samples = Arc::try_unwrap(samples)
        .map(|m| m.into_inner().unwrap_or_default())
        .unwrap_or_else(|arc| crate::lock_unpoisoned(&arc).clone());
    samples.sort_by(|a, b| {
        b.seconds
            .total_cmp(&a.seconds)
            .then_with(|| b.trace_id.is_some().cmp(&a.trace_id.is_some()))
    });
    samples.truncate(exemplar_count(config.requests));

    LoadtestReport {
        sent: sent.load(Ordering::Relaxed),
        ok: ok.load(Ordering::Relaxed),
        exemplars: samples,
        errors: Arc::try_unwrap(errors)
            .map(|m| m.into_inner().unwrap_or_default())
            .unwrap_or_else(|arc| crate::lock_unpoisoned(&arc).clone()),
        latency: Arc::try_unwrap(latency)
            .map(|m| m.into_inner().unwrap_or_default())
            .unwrap_or_else(|arc| crate::lock_unpoisoned(&arc).clone()),
        wall: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_sequence_is_seed_deterministic() {
        let a: Vec<String> = (0..20).map(|i| spec_for(7, i, 4)).collect();
        let b: Vec<String> = (0..20).map(|i| spec_for(7, i, 4)).collect();
        assert_eq!(a, b, "same seed, same sequence");
        let c: Vec<String> = (0..20).map(|i| spec_for(8, i, 4)).collect();
        assert_ne!(a, c, "different seed, different sequence");
        for spec in &a {
            assert!(spec.contains("vecsum:"), "{spec}");
        }
    }

    #[test]
    fn classification_taxonomy() {
        assert_eq!(classify(&Ok(200)), None);
        assert_eq!(classify(&Ok(503)), Some("http-503".to_string()));
        assert_eq!(classify(&Ok(404)), Some("http-4xx (404)".to_string()));
        assert_eq!(
            classify(&Err(ClientError::Connect("x".into()))),
            Some("connect".to_string())
        );
        assert_eq!(
            classify(&Err(ClientError::DeadlineExpired)),
            Some("deadline".to_string())
        );
    }

    #[test]
    fn loadtest_against_a_dead_port_reports_connect_errors() {
        // Bind then drop to get a very-likely-closed port.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let report = run_loadtest(&LoadtestConfig {
            target: addr.to_string(),
            workers: 2,
            requests: 10,
            ..LoadtestConfig::default()
        });
        assert_eq!(report.sent, 10);
        assert_eq!(report.ok, 0);
        assert_eq!(report.errors.get("connect"), Some(&10));
        // Connect failures carry no trace id, but the exemplar line
        // still reports the tail latency.
        assert_eq!(report.exemplars.len(), 1);
        assert!(report.exemplars[0].trace_id.is_none());
        let text = report.render();
        assert!(text.contains("loadtest sent: 10"), "{text}");
        assert!(text.contains("loadtest error connect: 10"), "{text}");
        assert!(text.contains("loadtest slowest: "), "{text}");
        assert!(text.contains("trace=-"), "{text}");
    }

    #[test]
    fn exemplar_count_tracks_the_p99_tail() {
        assert_eq!(exemplar_count(0), 1);
        assert_eq!(exemplar_count(50), 1);
        assert_eq!(exemplar_count(100), 1);
        assert_eq!(exemplar_count(300), 3);
        assert_eq!(exemplar_count(10_000), 8, "capped");
    }
}
