//! A deliberately small blocking HTTP/1.1 client.
//!
//! The mirror image of [`crate::http`]: one request per connection
//! (`Connection: close`), hard parse limits, and every socket
//! operation bounded by the caller's deadline so a wedged peer can
//! never pin a gateway thread past the request budget. Used by the
//! gateway's forwarding path, its health prober, and `ptmap loadtest`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Longest accepted status or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most accepted header lines.
const MAX_HEADERS: usize = 100;
/// Largest accepted response body, in bytes.
const MAX_BODY: usize = 16 * 1024 * 1024;
/// Connect timeout when the deadline leaves more room than this.
const CONNECT_CAP: Duration = Duration::from_secs(2);

/// Why a request to a peer failed without producing a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// TCP connect failed (refused, unreachable, bad address). The
    /// peer did no work; retrying elsewhere is always safe.
    Connect(String),
    /// The connection died mid-request or mid-response. The peer *may*
    /// have done work.
    Io(String),
    /// The peer answered with something that does not parse as HTTP.
    Malformed(String),
    /// The caller's deadline expired before a response arrived.
    DeadlineExpired,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(m) => write!(f, "connect: {m}"),
            ClientError::Io(m) => write!(f, "io: {m}"),
            ClientError::Malformed(m) => write!(f, "malformed response: {m}"),
            ClientError::DeadlineExpired => write!(f, "deadline expired"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// Short machine-readable class for metrics labels and error
    /// taxonomies.
    pub fn class(&self) -> &'static str {
        match self {
            ClientError::Connect(_) => "connect",
            ClientError::Io(_) => "io",
            ClientError::Malformed(_) => "malformed",
            ClientError::DeadlineExpired => "deadline",
        }
    }
}

/// One parsed response from a peer.
#[derive(Debug, Clone)]
pub struct PeerResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl PeerResponse {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Time left until `deadline`, or the error once it has passed.
fn remaining(deadline: Option<Instant>) -> Result<Option<Duration>, ClientError> {
    match deadline {
        None => Ok(None),
        Some(at) => {
            let now = Instant::now();
            if now >= at {
                Err(ClientError::DeadlineExpired)
            } else {
                Ok(Some(at - now))
            }
        }
    }
}

fn io_err(e: &std::io::Error) -> ClientError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            ClientError::DeadlineExpired
        }
        _ => ClientError::Io(e.to_string()),
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line with a length cap.
fn read_line(reader: &mut impl BufRead) -> Result<String, ClientError> {
    let mut line = Vec::new();
    let mut limited = reader.by_ref().take((MAX_LINE + 1) as u64);
    limited
        .read_until(b'\n', &mut line)
        .map_err(|e| io_err(&e))?;
    if line.len() > MAX_LINE {
        return Err(ClientError::Malformed("header line too long".into()));
    }
    while line.last().is_some_and(|b| *b == b'\n' || *b == b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ClientError::Malformed("non-UTF-8 header".into()))
}

/// Sends one request to `addr` and reads the full response.
///
/// `deadline` bounds the *whole* exchange: connect, write, and read
/// all inherit the remaining time (connect additionally capped at
/// [`CONNECT_CAP`] so a blackholed peer fails fast even under a
/// generous budget).
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    deadline: Option<Instant>,
) -> Result<PeerResponse, ClientError> {
    let sock: SocketAddr = addr
        .to_socket_addrs()
        .map_err(|e| ClientError::Connect(format!("{addr}: {e}")))?
        .next()
        .ok_or_else(|| ClientError::Connect(format!("{addr}: no address")))?;

    let connect_timeout = match remaining(deadline)? {
        Some(left) => left.min(CONNECT_CAP),
        None => CONNECT_CAP,
    };
    let mut stream = TcpStream::connect_timeout(&sock, connect_timeout)
        .map_err(|e| ClientError::Connect(format!("{addr}: {e}")))?;

    let left = remaining(deadline)?;
    stream.set_write_timeout(left).map_err(|e| io_err(&e))?;
    stream.set_read_timeout(left).map_err(|e| io_err(&e))?;

    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    for (name, value) in headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str(&format!(
        "Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    ));
    stream.write_all(req.as_bytes()).map_err(|e| io_err(&e))?;
    stream.write_all(body).map_err(|e| io_err(&e))?;
    stream.flush().map_err(|e| io_err(&e))?;

    read_response(&mut stream, deadline)
}

/// Reads and parses one response (status line, headers, body).
fn read_response(
    stream: &mut TcpStream,
    deadline: Option<Instant>,
) -> Result<PeerResponse, ClientError> {
    // Refresh the read timeout: time spent writing is gone.
    stream
        .set_read_timeout(remaining(deadline)?)
        .map_err(|e| io_err(&e))?;
    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?;
    let mut parts = status_line.split_ascii_whitespace();
    let (version, status) = match (parts.next(), parts.next()) {
        (Some(v), Some(s)) => (v, s),
        _ => {
            return Err(ClientError::Malformed(format!(
                "bad status line {status_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ClientError::Malformed(format!("bad version {version}")));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| ClientError::Malformed(format!("bad status {status:?}")))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ClientError::Malformed("too many headers".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ClientError::Malformed(format!("bad header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ClientError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?;
    let body = match content_length {
        Some(len) if len > MAX_BODY => {
            return Err(ClientError::Malformed("response body too large".into()))
        }
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).map_err(|e| io_err(&e))?;
            body
        }
        // No Content-Length (the daemon always sends one, but be
        // liberal): read to EOF, bounded.
        None => {
            let mut body = Vec::new();
            let mut limited = reader.take((MAX_BODY + 1) as u64);
            limited.read_to_end(&mut body).map_err(|e| io_err(&e))?;
            if body.len() > MAX_BODY {
                return Err(ClientError::Malformed("response body too large".into()));
            }
            body
        }
    };
    Ok(PeerResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{write_response, Response};
    use std::net::TcpListener;

    /// Serves one canned response on an ephemeral port.
    fn serve_once(resp: Response) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Drain the request first so the client's write never
            // races the close.
            let mut buf = [0u8; 4096];
            let mut seen = Vec::new();
            while let Ok(n) = stream.read(&mut buf) {
                if n == 0 {
                    break;
                }
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            write_response(&mut stream, &resp).unwrap();
        });
        addr
    }

    #[test]
    fn round_trips_a_json_response() {
        let addr = serve_once(
            Response::json(200, "{\"ok\":true}".into())
                .with_header("X-Ptmap-Trace-Id", "t-1".into()),
        );
        let reply = request(
            &addr.to_string(),
            "POST",
            "/compile",
            &[("X-Ptmap-Deadline-Ms", "1000")],
            b"{}",
            Some(Instant::now() + Duration::from_secs(5)),
        )
        .unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("x-ptmap-trace-id"), Some("t-1"));
        assert_eq!(reply.body_text(), "{\"ok\":true}");
    }

    #[test]
    fn connection_refused_is_a_connect_error() {
        // Bind then drop to get a port that is very likely closed.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let err = request(&addr.to_string(), "GET", "/healthz", &[], b"", None).unwrap_err();
        assert!(
            matches!(err, ClientError::Connect(_)),
            "expected connect error, got {err:?}"
        );
        assert_eq!(err.class(), "connect");
    }

    #[test]
    fn expired_deadline_fails_before_connecting() {
        let err = request(
            "127.0.0.1:1",
            "GET",
            "/",
            &[],
            b"",
            Some(Instant::now() - Duration::from_millis(1)),
        )
        .unwrap_err();
        assert_eq!(err, ClientError::DeadlineExpired);
    }

    #[test]
    fn wedged_peer_hits_the_deadline() {
        // A listener that accepts and never answers.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _keeper = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(2));
            drop(stream);
        });
        let t0 = Instant::now();
        let err = request(
            &addr.to_string(),
            "GET",
            "/healthz",
            &[],
            b"",
            Some(Instant::now() + Duration::from_millis(120)),
        )
        .unwrap_err();
        assert_eq!(err, ClientError::DeadlineExpired, "{err:?}");
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "must fail at the deadline, not at the peer's leisure"
        );
    }

    #[test]
    fn garbage_is_malformed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let _ = stream.write_all(b"SPDY/9000 totally not http\r\n\r\n");
        });
        let err = request(&addr.to_string(), "GET", "/", &[], b"", None).unwrap_err();
        assert!(matches!(err, ClientError::Malformed(_)), "{err:?}");
    }
}
