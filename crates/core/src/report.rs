//! Compilation reports.

use ptmap_eval::RankMode;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Realization of one PNL in the accepted choice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PnlRealization {
    /// Human-readable transformation description.
    pub desc: String,
    /// Achieved II from the loop-scheduling back-end.
    pub ii: u32,
    /// The MII bound.
    pub mii: u32,
    /// Achieved pipeline fill/drain cycles.
    pub pro_epi: u32,
    /// What the predictor forecast for this candidate.
    pub predicted_ii: u32,
    /// PE-array compute-slot utilization.
    pub utilization: f64,
    /// Simulated cycles for this PNL (including stalls).
    pub cycles: u64,
    /// Off-CGRA volume in bytes.
    pub volume: u64,
    /// Which mapper backend produced the mapping ("heuristic" /
    /// "exact"; in portfolio mode, the winning arm). Empty in reports
    /// from before backends existed.
    #[serde(default)]
    pub backend: String,
    /// The proven-optimal II, when the exact backend (or an MII hit)
    /// established one.
    #[serde(default)]
    pub ii_opt: Option<u32>,
    /// The heuristic's II for the same candidate, when a heuristic arm
    /// ran (exact/portfolio modes) — `heuristic_ii - ii_opt` is the
    /// measured heuristic optimality gap reported in EXPERIMENTS.md.
    #[serde(default)]
    pub heuristic_ii: Option<u32>,
    /// Whether `ii` is proven optimal — `ii - ii_opt.unwrap()` is then
    /// the measured optimality gap (zero unless a proof exists below
    /// the achieved II, which cannot happen: a strictly better II
    /// found by the exact backend becomes the mapping itself).
    #[serde(default)]
    pub proven_optimal: bool,
}

/// The result of a full PT-Map compilation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompileReport {
    /// Program name.
    pub program: String,
    /// Architecture name.
    pub arch: String,
    /// Ranking mode used.
    pub mode: RankMode,
    /// Total simulated cycles (all PNLs + non-PNL statements + stalls).
    pub cycles: u64,
    /// Total estimated energy in picojoules.
    pub energy_pj: f64,
    /// Energy-delay product (pJ·cycles).
    pub edp: f64,
    /// Per-PNL details.
    pub pnls: Vec<PnlRealization>,
    /// Candidates produced by the exploration.
    pub candidates_explored: usize,
    /// Candidates rejected by the CB/DB constraints.
    pub candidates_pruned: usize,
    /// Ranked choices tried before one was fully mappable.
    pub context_generation_attempts: usize,
    /// Wall-clock compilation time.
    pub compile_seconds: f64,
}

impl CompileReport {
    /// A copy with the wall-clock timing zeroed. Compilation results
    /// are deterministic; the clock is not. Identity comparisons (cache
    /// validation, serial-vs-parallel batch equivalence) compare this
    /// form.
    pub fn without_timing(&self) -> CompileReport {
        CompileReport {
            compile_seconds: 0.0,
            ..self.clone()
        }
    }
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on {} [{:?}]: {} cycles, {:.3e} pJ, EDP {:.3e} ({} PNLs, {:.2}s)",
            self.program,
            self.arch,
            self.mode,
            self.cycles,
            self.energy_pj,
            self.edp,
            self.pnls.len(),
            self.compile_seconds
        )?;
        for (i, p) in self.pnls.iter().enumerate() {
            writeln!(
                f,
                "  PNL {i}: II {} (MII {}, predicted {}), util {:.1}%, {} cycles — {}",
                p.ii,
                p.mii,
                p.predicted_ii,
                p.utilization * 100.0,
                p.cycles,
                p.desc
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_pnls() {
        let r = CompileReport {
            program: "gemm".into(),
            arch: "S4".into(),
            mode: RankMode::Performance,
            cycles: 1000,
            energy_pj: 5.0e6,
            edp: 5.0e9,
            pnls: vec![PnlRealization {
                desc: "order+unroll".into(),
                ii: 5,
                mii: 4,
                pro_epi: 7,
                predicted_ii: 5,
                utilization: 0.25,
                cycles: 900,
                volume: 4096,
                backend: "heuristic".into(),
                ii_opt: None,
                heuristic_ii: None,
                proven_optimal: false,
            }],
            candidates_explored: 42,
            candidates_pruned: 3,
            context_generation_attempts: 1,
            compile_seconds: 0.5,
        };
        let s = r.to_string();
        assert!(s.contains("gemm on S4"));
        assert!(s.contains("II 5 (MII 4"));
    }
}
