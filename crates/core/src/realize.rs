//! Realizing a (possibly transformed) program without PT-Map's search:
//! map every PNL with the loop-scheduling back-end and simulate.
//!
//! This is the execution path of the scheduling-only baselines (RAMP and
//! the stronger learned schedulers) and of black-box tuners that measure
//! candidates directly.

use crate::report::{CompileReport, PnlRealization};
use crate::PtMapError;
use ptmap_arch::CgraArch;
use ptmap_eval::non_pnl_cycles;
use ptmap_ir::dfg::build_dfg;
use ptmap_ir::{LoopId, Program};
use ptmap_mapper::MapperConfig;
use ptmap_model::MemoryProfiler;
use ptmap_sim::exec::OFFCHIP_BYTES_PER_CYCLE;
use ptmap_sim::EnergyModel;
use std::time::Instant;

/// Maps and simulates a program as-is: one mapping per PNL with the
/// given per-PNL unroll vectors (aligned with `program.perfect_nests()`;
/// pass an empty slice for no unrolling anywhere).
///
/// # Errors
///
/// [`PtMapError::NoPnl`] for PNL-free programs;
/// [`PtMapError::NothingMappable`] when any PNL fails to map.
pub fn realize_program(
    program: &Program,
    arch: &CgraArch,
    mapper: &MapperConfig,
    energy_model: &EnergyModel,
    unroll_per_pnl: &[Vec<(LoopId, u32)>],
) -> Result<CompileReport, PtMapError> {
    realize_program_budgeted(
        program,
        arch,
        mapper,
        energy_model,
        unroll_per_pnl,
        &ptmap_governor::Budget::unlimited(),
    )
}

/// [`realize_program`] under a cooperative [`ptmap_governor::Budget`]
/// (threaded into every `map_dfg` call).
///
/// # Errors
///
/// Everything [`realize_program`] returns, plus
/// [`PtMapError::Timeout`] / [`PtMapError::Cancelled`] from the budget
/// and [`PtMapError::Fault`] from injected faults.
pub fn realize_program_budgeted(
    program: &Program,
    arch: &CgraArch,
    mapper: &MapperConfig,
    energy_model: &EnergyModel,
    unroll_per_pnl: &[Vec<(LoopId, u32)>],
    budget: &ptmap_governor::Budget,
) -> Result<CompileReport, PtMapError> {
    let t0 = Instant::now();
    let nests = program.perfect_nests();
    if nests.is_empty() {
        return Err(PtMapError::NoPnl);
    }
    let mut pnls = Vec::new();
    let mut cycles = non_pnl_cycles(program);
    let mut energy = 0.0f64;
    for (i, nest) in nests.iter().enumerate() {
        let unroll = unroll_per_pnl.get(i).cloned().unwrap_or_default();
        let dfg = build_dfg(program, nest, &unroll).map_err(|_| PtMapError::NothingMappable)?;
        let outcome = ptmap_exact::map_with_backend(
            &dfg,
            arch,
            mapper,
            budget,
            &ptmap_trace::Tracer::disabled(),
        )
        .map_err(|e| match e {
            ptmap_mapper::MapError::Timeout => PtMapError::Timeout,
            ptmap_mapper::MapError::Cancelled => PtMapError::Cancelled,
            ptmap_mapper::MapError::Fault(site) => PtMapError::Fault(site),
            _ => PtMapError::NothingMappable,
        })?;
        let mapping = outcome.mapping;
        let profile = MemoryProfiler::new(program).profile(nest, arch, mapping.ii);
        let eff: Vec<u64> = nest
            .loops
            .iter()
            .zip(&nest.tripcounts)
            .map(|(&l, &tc)| {
                let f = unroll
                    .iter()
                    .find(|&&(ul, _)| ul == l)
                    .map(|&(_, f)| f as u64)
                    .unwrap_or(1);
                tc.div_ceil(f)
            })
            .collect();
        let launch_cycles = mapping.cycles(*eff.last().expect("nest non-empty"));
        let launches: u64 = eff[..eff.len() - 1].iter().product::<u64>() * nest.outer_tripcount();
        let compute = launch_cycles * launches;
        let transfer = profile.total_volume().div_ceil(OFFCHIP_BYTES_PER_CYCLE);
        let pnl_cycles = ptmap_sim::exec::overlap_cycles(compute, transfer);
        let iterations = eff.iter().product::<u64>() * nest.outer_tripcount();
        energy += energy_model
            .pnl_energy_with_iterations(&mapping, &dfg, iterations, &profile, pnl_cycles);
        cycles += pnl_cycles;
        pnls.push(PnlRealization {
            desc: if unroll.is_empty() {
                "as-is".to_string()
            } else {
                format!("unroll{unroll:?}")
            },
            ii: mapping.ii,
            mii: mapping.mii,
            pro_epi: mapping.pro_epi(),
            predicted_ii: mapping.ii,
            utilization: mapping.utilization(),
            cycles: pnl_cycles,
            volume: profile.total_volume(),
            backend: outcome.backend.to_string(),
            ii_opt: outcome.ii_opt,
            heuristic_ii: outcome.heuristic_ii,
            proven_optimal: outcome.proven_optimal,
        });
    }
    let edp = energy_model.edp(energy, cycles);
    Ok(CompileReport {
        program: program.name.clone(),
        arch: arch.name().to_string(),
        mode: ptmap_eval::RankMode::Performance,
        cycles,
        energy_pj: energy,
        edp,
        pnls,
        candidates_explored: 1,
        candidates_pruned: 0,
        context_generation_attempts: 1,
        compile_seconds: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;

    #[test]
    fn identity_gemm_realizes() {
        let p = ptmap_workloads::micro::gemm(24);
        let r = realize_program(
            &p,
            &presets::s4(),
            &MapperConfig::default(),
            &EnergyModel::default(),
            &[],
        )
        .unwrap();
        assert_eq!(r.pnls.len(), 1);
        assert!(r.cycles >= 24 * 24 * 24 * 4);
    }

    #[test]
    fn unrolled_realization_fewer_cycles() {
        let p = ptmap_workloads::micro::gemm(24);
        let nest = p.perfect_nests().remove(0);
        let (i, j) = (nest.loops[0], nest.loops[1]);
        let base = realize_program(
            &p,
            &presets::sl8(),
            &MapperConfig::default(),
            &EnergyModel::default(),
            &[],
        )
        .unwrap();
        let unrolled = realize_program(
            &p,
            &presets::sl8(),
            &MapperConfig::default(),
            &EnergyModel::default(),
            &[vec![(i, 4), (j, 4)]],
        )
        .unwrap();
        assert!(
            unrolled.cycles < base.cycles,
            "unrolled {} vs base {}",
            unrolled.cycles,
            base.cycles
        );
    }

    #[test]
    fn all_apps_realize_on_s4() {
        for (name, p) in ptmap_workloads::apps::all() {
            let r = realize_program(
                &p,
                &presets::s4(),
                &MapperConfig::default(),
                &EnergyModel::default(),
                &[],
            );
            assert!(r.is_ok(), "{name} failed: {r:?}");
        }
    }
}
