//! The end-to-end PT-Map framework (Fig. 3).
//!
//! [`PtMap::compile`] runs the full pipeline on an annotated program:
//!
//! 1. **Top-down exploration** (`ptmap-transform`) builds the result
//!    forest of transformation candidates;
//! 2. **Bottom-up evaluation** (`ptmap-eval`) profiles every candidate
//!    with the configured [`IiPredictor`] (GNN by default, analytical
//!    for the `AM` ablation), prunes against the CB/DB constraints, and
//!    ranks in the requested mode;
//! 3. **Context generation** walks the ranked program-level choices and
//!    accepts the highest-ranking one whose innermost loops all map
//!    under the real modulo scheduler (the extended-RAMP back-end);
//! 4. The accepted mapping set is **simulated** (`ptmap-sim`) for cycle,
//!    energy, and EDP totals.
//!
//! # Example
//!
//! ```
//! use ptmap_core::{PtMap, PtMapConfig};
//! use ptmap_eval::AnalyticalPredictor;
//! use ptmap_arch::presets;
//! use ptmap_ir::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new("scale");
//! let x = b.array("X", &[256]);
//! let i = b.open_loop("i", 256);
//! let v = b.mul(b.load(x, &[b.idx(i)]), b.constant(3));
//! b.store(x, &[b.idx(i)], v);
//! b.close_loop();
//! let program = b.finish();
//!
//! let ptmap = PtMap::new(Box::new(AnalyticalPredictor), PtMapConfig::default());
//! let report = ptmap.compile(&program, &presets::s4())?;
//! println!("cycles: {}, EDP: {:.3e}", report.cycles, report.edp);
//! # Ok::<(), ptmap_core::PtMapError>(())
//! ```

pub mod metrics;
pub mod realize;
pub mod report;

pub use metrics::CompileMetrics;
pub use realize::{realize_program, realize_program_budgeted};
pub use report::{CompileReport, PnlRealization};

use ptmap_arch::CgraArch;
use ptmap_eval::{select_programs, EvalConfig, IiPredictor, ProgramChoice, RankMode};
use ptmap_ir::dfg::build_dfg;
use ptmap_ir::Program;
use ptmap_mapper::MapperConfig;
use ptmap_model::MemoryProfiler;
use ptmap_sim::{simulate_pnl, EnergyModel};
use ptmap_transform::ExploreConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Errors from the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PtMapError {
    /// The program has no perfectly nested loop to map.
    NoPnl,
    /// No ranked candidate combination was mappable by the back-end.
    NothingMappable,
    /// The compilation budget's deadline (or work limit) ran out;
    /// whichever stage was running (exploration, evaluation, context
    /// generation) stopped cooperatively at its next checkpoint.
    Timeout,
    /// The compilation budget was cancelled from outside.
    Cancelled,
    /// An `error`-mode fault point fired somewhere in the pipeline
    /// (fault injection only; see `ptmap_governor::faultpoint`).
    Fault(String),
}

impl From<ptmap_governor::BudgetExceeded> for PtMapError {
    fn from(e: ptmap_governor::BudgetExceeded) -> Self {
        match e {
            ptmap_governor::BudgetExceeded::Cancelled => PtMapError::Cancelled,
            ptmap_governor::BudgetExceeded::Timeout
            | ptmap_governor::BudgetExceeded::WorkExhausted => PtMapError::Timeout,
        }
    }
}

impl fmt::Display for PtMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtMapError::NoPnl => write!(f, "program contains no perfectly nested loop"),
            PtMapError::NothingMappable => {
                write!(
                    f,
                    "no ranked transformation had all innermost loops mappable"
                )
            }
            PtMapError::Timeout => write!(f, "compilation timed out: budget exceeded"),
            PtMapError::Cancelled => write!(f, "compilation cancelled"),
            PtMapError::Fault(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for PtMapError {}

/// Narrows a [`ptmap_mapper::MapError`] to the budget/fault errors the
/// pipeline must surface as-is; everything else (infeasible, unsupported
/// op, …) is a per-candidate rejection the caller handles locally.
fn map_error_to_pipeline(e: &ptmap_mapper::MapError) -> Option<PtMapError> {
    match e {
        ptmap_mapper::MapError::Timeout => Some(PtMapError::Timeout),
        ptmap_mapper::MapError::Cancelled => Some(PtMapError::Cancelled),
        ptmap_mapper::MapError::Fault(site) => Some(PtMapError::Fault(site.clone())),
        _ => None,
    }
}

/// Pipeline configuration.
///
/// Serializes for content-addressed caching in `ptmap-pipeline`; every
/// field that changes compilation *results* is part of the serialized
/// form, while [`eval_workers`](PtMapConfig::eval_workers) (a pure
/// throughput knob with bit-identical output) is skipped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PtMapConfig {
    /// Exploration knobs.
    pub explore: ExploreConfig,
    /// Evaluation knobs (top-K etc.).
    pub eval: EvalConfig,
    /// The loop-scheduling back-end used for context generation.
    pub mapper: MapperConfig,
    /// Ranking mode for the final selection.
    pub mode: RankMode,
    /// Energy model for the report.
    pub energy: EnergyModel,
    /// How many ranked choices context generation actually schedules
    /// before keeping the best realized one (the paper stops at the
    /// first mappable choice; a small beam hedges predictor error).
    pub realize_beam: usize,
    /// Compare the realized choice against the identity mapping and keep
    /// the better — the untransformed program is always in PT-Map's
    /// space, so the output should never lose to it.
    pub identity_guard: bool,
    /// Fall back to the identity mapping when *no* ranked choice maps
    /// (disable to reproduce the paper's AM "fail" entries).
    pub fallback: bool,
    /// Threads sharding the independent per-candidate evaluations
    /// (`<= 1` = serial). Does not affect results, so it is excluded
    /// from the cache-key serialization.
    #[serde(skip)]
    pub eval_workers: usize,
}

impl Default for PtMapConfig {
    fn default() -> Self {
        PtMapConfig {
            explore: ExploreConfig::default(),
            eval: EvalConfig::default(),
            mapper: MapperConfig::default(),
            mode: RankMode::default(),
            energy: EnergyModel::default(),
            realize_beam: 4,
            identity_guard: true,
            fallback: true,
            eval_workers: 1,
        }
    }
}

/// The PT-Map compiler.
pub struct PtMap {
    predictor: Box<dyn IiPredictor + Send + Sync>,
    config: PtMapConfig,
    tap: Option<std::sync::Arc<dyn ptmap_eval::SampleTap>>,
}

impl fmt::Debug for PtMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PtMap(predictor: {})", self.predictor.name())
    }
}

impl PtMap {
    /// Creates a compiler with a predictor and configuration.
    pub fn new(predictor: Box<dyn IiPredictor + Send + Sync>, config: PtMapConfig) -> Self {
        PtMap {
            predictor,
            config,
            tap: None,
        }
    }

    /// Attaches a [`ptmap_eval::SampleTap`] that observes every accepted
    /// mapping (predicted vs actual `(II, ProEpi)` plus the mapped DFG).
    /// The tap is observe-only: it runs after the mapping is accepted and
    /// cannot influence compilation, so results with and without a tap
    /// are bit-identical. Identity-guard/fallback realizations are not
    /// tapped — they carry no predictor forecast to compare against.
    pub fn with_tap(mut self, tap: std::sync::Arc<dyn ptmap_eval::SampleTap>) -> Self {
        self.tap = Some(tap);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &PtMapConfig {
        &self.config
    }

    /// The predictor's short name (for cache keys and reports).
    pub fn predictor_name(&self) -> &'static str {
        self.predictor.name()
    }

    /// Runs the full pipeline.
    ///
    /// # Errors
    ///
    /// [`PtMapError::NoPnl`] when the program has no pipelined loop, and
    /// [`PtMapError::NothingMappable`] when context generation fails for
    /// every ranked choice.
    pub fn compile(&self, program: &Program, arch: &CgraArch) -> Result<CompileReport, PtMapError> {
        self.compile_instrumented(program, arch).0
    }

    /// Runs the full pipeline under a cooperative
    /// [`ptmap_governor::Budget`]: every stage checks the budget at its
    /// natural granularity (per variant branch while exploring, per
    /// candidate while evaluating, per placement attempt while mapping)
    /// and surfaces [`PtMapError::Timeout`] / [`PtMapError::Cancelled`]
    /// promptly when it runs out.
    ///
    /// # Errors
    ///
    /// Everything [`PtMap::compile`] returns, plus the budget errors.
    pub fn compile_budgeted(
        &self,
        program: &Program,
        arch: &CgraArch,
        budget: &ptmap_governor::Budget,
    ) -> Result<CompileReport, PtMapError> {
        self.compile_instrumented_budgeted(program, arch, budget).0
    }

    /// Runs the full pipeline, returning the per-stage
    /// [`CompileMetrics`] alongside the result (the metrics are filled
    /// even when compilation fails).
    pub fn compile_instrumented(
        &self,
        program: &Program,
        arch: &CgraArch,
    ) -> (Result<CompileReport, PtMapError>, CompileMetrics) {
        self.compile_instrumented_budgeted(program, arch, &ptmap_governor::Budget::unlimited())
    }

    /// [`PtMap::compile_budgeted`] with [`CompileMetrics`] (see
    /// [`PtMap::compile_instrumented`]).
    pub fn compile_instrumented_budgeted(
        &self,
        program: &Program,
        arch: &CgraArch,
        budget: &ptmap_governor::Budget,
    ) -> (Result<CompileReport, PtMapError>, CompileMetrics) {
        self.compile_instrumented_traced(program, arch, budget, &ptmap_trace::Tracer::disabled())
    }

    /// [`PtMap::compile_instrumented_budgeted`] with span-tree
    /// instrumentation: records `explore` / `evaluate` / `map` /
    /// `simulate` child spans (the mapper nests its per-II
    /// `ii_attempt` spans under `map`) on `tracer`. A disabled tracer
    /// makes this identical to the untraced entry point; an enabled
    /// one never changes the compile result.
    pub fn compile_instrumented_traced(
        &self,
        program: &Program,
        arch: &CgraArch,
        budget: &ptmap_governor::Budget,
        tracer: &ptmap_trace::Tracer,
    ) -> (Result<CompileReport, PtMapError>, CompileMetrics) {
        let mut m = CompileMetrics::default();
        let result = self.compile_inner(program, arch, budget, &mut m, tracer);
        (result, m)
    }

    fn compile_inner(
        &self,
        program: &Program,
        arch: &CgraArch,
        budget: &ptmap_governor::Budget,
        m: &mut CompileMetrics,
        tracer: &ptmap_trace::Tracer,
    ) -> Result<CompileReport, PtMapError> {
        let t0 = Instant::now();
        m.model_version = self.predictor.version();
        if program.perfect_nests().is_empty() {
            return Err(PtMapError::NoPnl);
        }
        // 1. Top-down exploration.
        let t = Instant::now();
        let span = tracer.span("explore");
        // A budgeted exploration only fails on the budget itself, so the
        // catch-all arm maps the remaining (unreachable) variants to
        // Timeout rather than inventing a new error class.
        let forest = ptmap_transform::explore_budgeted(program, &self.config.explore, budget)
            .map_err(|e| match e {
                ptmap_transform::TransformError::Cancelled => PtMapError::Cancelled,
                _ => PtMapError::Timeout,
            });
        m.explore_seconds += t.elapsed().as_secs_f64();
        if let Ok(f) = &forest {
            span.attr("candidates_explored", f.candidate_count());
        }
        drop(span);
        let forest = forest?;
        let explored = forest.candidate_count();
        m.candidates_explored = explored;
        // 2. Bottom-up evaluation + ranking (candidates are independent,
        // so this stage shards across `eval_workers` threads).
        let t = Instant::now();
        let eval_span = tracer.span("evaluate");
        let eval = ptmap_eval::evaluate_forest_sharded_budgeted(
            &forest,
            arch,
            self.predictor.as_ref(),
            &self.config.eval,
            self.config.eval_workers,
            budget,
        )
        .map_err(|e| match e {
            ptmap_eval::EvalError::Cancelled => PtMapError::Cancelled,
            _ => PtMapError::Timeout,
        });
        let eval = match eval {
            Ok(eval) => eval,
            Err(e) => {
                m.evaluate_seconds += t.elapsed().as_secs_f64();
                return Err(e);
            }
        };
        let pruned: usize = eval
            .variants
            .iter()
            .flat_map(|v| &v.rankings)
            .flat_map(|r| &r.evaluated)
            .filter(|e| e.pruned.is_some())
            .count();
        m.candidates_pruned = pruned;
        let choices = select_programs(&eval, self.config.mode, &self.config.eval);
        m.evaluate_seconds += t.elapsed().as_secs_f64();
        eval_span.attr("candidates_pruned", pruned);
        eval_span.attr("choices", choices.len());
        drop(eval_span);
        // 3. Context generation: schedule ranked choices in order, keep
        // the best of the first `realize_beam` that map.
        let mut attempts = 0usize;
        let mut best: Option<CompileReport> = None;
        let mut realized = 0usize;
        let objective = |r: &CompileReport| match self.config.mode {
            RankMode::Performance => r.cycles as f64,
            RankMode::Pareto => r.edp,
        };
        for choice in &choices {
            attempts += 1;
            if let Some(report) = self.realize(
                &eval, choice, arch, explored, pruned, attempts, t0, budget, m, tracer,
            )? {
                realized += 1;
                if best
                    .as_ref()
                    .is_none_or(|b| objective(&report) < objective(b))
                {
                    best = Some(report);
                }
                if realized >= self.config.realize_beam.max(1) {
                    break;
                }
            }
        }
        // Identity guard / fallback: the untransformed program is always
        // a legal member of the space.
        let use_identity = (best.is_none() && self.config.fallback)
            || (best.is_some() && self.config.identity_guard);
        if use_identity {
            let t = Instant::now();
            let identity_span = tracer.span("map");
            identity_span.attr("identity", true);
            let identity_result = crate::realize::realize_program_budgeted(
                program,
                arch,
                &self.config.mapper,
                &self.config.energy,
                &[],
                budget,
            );
            // The identity pass interleaves scheduling and simulation;
            // charge it to the mapping stage.
            m.map_seconds += t.elapsed().as_secs_f64();
            drop(identity_span);
            // Budget/fault errors abort the whole compile even when a
            // transformed choice already realized: a timed-out job must
            // not silently return a report that skipped the guard.
            if let Err(e) = &identity_result {
                if matches!(
                    e,
                    PtMapError::Timeout | PtMapError::Cancelled | PtMapError::Fault(_)
                ) {
                    return Err(e.clone());
                }
            }
            if let Ok(mut identity) = identity_result {
                m.mapper_accepts += identity.pnls.len();
                // Per-backend accounting for the identity pass too, so
                // wins always sum to accepts (cancellation counts are
                // search-path-only; the realizer drops them).
                for p in &identity.pnls {
                    match p.backend.as_str() {
                        "exact" => m.backend_exact_wins += 1,
                        _ => m.backend_heuristic_wins += 1,
                    }
                    m.exact_optimality_proofs += p.proven_optimal as usize;
                }
                if ptmap_mapper::validation_enabled(&self.config.mapper) {
                    m.mappings_validated += identity.pnls.len();
                }
                identity.mode = self.config.mode;
                identity.candidates_explored = explored;
                identity.candidates_pruned = pruned;
                identity.context_generation_attempts = attempts + 1;
                if best
                    .as_ref()
                    .is_none_or(|b| objective(&identity) < objective(b))
                {
                    best = Some(identity);
                }
            }
        }
        m.context_generation_attempts = attempts;
        match best {
            Some(mut report) => {
                report.compile_seconds = t0.elapsed().as_secs_f64();
                Ok(report)
            }
            None => Err(PtMapError::NothingMappable),
        }
    }

    /// Attempts to map every PNL of a program-level choice; returns the
    /// full report on success, `None` when the back-end rejects a
    /// candidate, and an error when the budget runs out (or a fault
    /// point fires) mid-realization.
    #[allow(clippy::too_many_arguments)]
    fn realize(
        &self,
        eval: &ptmap_eval::EvaluatedForest,
        choice: &ProgramChoice,
        arch: &CgraArch,
        explored: usize,
        pruned: usize,
        attempts: usize,
        t0: Instant,
        budget: &ptmap_governor::Budget,
        m: &mut CompileMetrics,
        tracer: &ptmap_trace::Tracer,
    ) -> Result<Option<CompileReport>, PtMapError> {
        let variant = &eval.variants[choice.variant];
        let mut pnls = Vec::new();
        let mut cycles = ptmap_eval::non_pnl_cycles(&variant.program);
        let mut energy = 0.0f64;
        for (pnl_idx, &sel) in choice.selection.iter().enumerate() {
            let e = &variant.rankings[pnl_idx].evaluated[sel];
            let c = &e.candidate;
            let t = Instant::now();
            let map_span = tracer.span("map");
            map_span.attr("attempt", attempts);
            map_span.attr("pnl", pnl_idx);
            let mapped = match build_dfg(&c.program, &c.nest, &c.unroll) {
                Ok(dfg) => {
                    match ptmap_exact::map_with_backend(
                        &dfg,
                        arch,
                        &self.config.mapper,
                        budget,
                        map_span.tracer(),
                    ) {
                        Ok(out) => Some((dfg, out)),
                        Err(e) => {
                            m.map_seconds += t.elapsed().as_secs_f64();
                            if let Some(p) = map_error_to_pipeline(&e) {
                                return Err(p);
                            }
                            None
                        }
                    }
                }
                Err(_) => None,
            };
            let Some((dfg, outcome)) = mapped else {
                m.mapper_rejects += 1;
                return Ok(None);
            };
            m.map_seconds += t.elapsed().as_secs_f64();
            map_span.attr("ii", outcome.mapping.ii as u64);
            map_span.attr("backend", outcome.backend);
            map_span.attr("proven_optimal", outcome.proven_optimal);
            if let Some(opt) = outcome.ii_opt {
                map_span.attr("ii_opt", opt as u64);
            }
            drop(map_span);
            m.mapper_accepts += 1;
            match outcome.backend {
                "exact" => m.backend_exact_wins += 1,
                _ => m.backend_heuristic_wins += 1,
            }
            m.exact_optimality_proofs += outcome.proven_optimal as usize;
            m.portfolio_cancellations += outcome.losers_cancelled as usize;
            m.speculative_rungs_cancelled += outcome.speculative_cancelled as usize;
            let mapping = outcome.mapping;
            // map_dfg validates internally when enabled; an accepted
            // mapping was therefore also a validated one.
            if ptmap_mapper::validation_enabled(&self.config.mapper) {
                m.mappings_validated += 1;
            }
            let t = Instant::now();
            let sim_span = tracer.span("simulate");
            sim_span.attr("pnl", pnl_idx);
            let profile = MemoryProfiler::new(&c.program).profile(&c.nest, arch, mapping.ii);
            // Simulate with effective (post-unroll) tripcounts.
            let eff = c.effective_tripcounts();
            // Online-learning tap: report predicted vs actual for this
            // accepted mapping. Strictly observe-only (see `with_tap`).
            if let Some(tap) = &self.tap {
                tap.record(
                    &dfg,
                    arch,
                    &ptmap_eval::TapObservation {
                        predicted_ii: e.ii,
                        predicted_pro_epi: e.pro_epi,
                        actual_ii: mapping.ii,
                        actual_pro_epi: mapping.pro_epi(),
                        mii: mapping.mii,
                        tc: *eff.last().expect("nest"),
                        backend: outcome.backend,
                        trace_id: tracer.trace_id().map(str::to_string),
                    },
                );
            }
            let launch_cycles = mapping.cycles(*eff.last().expect("nest"));
            let launches: u64 =
                eff[..eff.len() - 1].iter().product::<u64>() * c.nest.outer_tripcount();
            let sim = simulate_pnl(&mapping, &dfg, &c.nest, &profile);
            let _ = sim; // utilization is per-launch; totals use eff tripcounts
            let transfer = profile
                .total_volume()
                .div_ceil(ptmap_sim::exec::OFFCHIP_BYTES_PER_CYCLE);
            let compute = launch_cycles * launches;
            let pnl_cycles = ptmap_sim::exec::overlap_cycles(compute, transfer);
            let iterations = eff.iter().product::<u64>() * c.nest.outer_tripcount();
            let e_pj = self
                .config
                .energy
                .pnl_energy_with_iterations(&mapping, &dfg, iterations, &profile, pnl_cycles);
            cycles += pnl_cycles;
            energy += e_pj;
            pnls.push(PnlRealization {
                desc: c.desc.clone(),
                ii: mapping.ii,
                mii: mapping.mii,
                pro_epi: mapping.pro_epi(),
                predicted_ii: e.ii,
                utilization: mapping.utilization(),
                cycles: pnl_cycles,
                volume: profile.total_volume(),
                backend: outcome.backend.to_string(),
                ii_opt: outcome.ii_opt,
                heuristic_ii: outcome.heuristic_ii,
                proven_optimal: outcome.proven_optimal,
            });
            m.simulate_seconds += t.elapsed().as_secs_f64();
            drop(sim_span);
        }
        let edp = self.config.energy.edp(energy, cycles);
        Ok(Some(CompileReport {
            program: variant.program.name.clone(),
            arch: arch.name().to_string(),
            mode: self.config.mode,
            cycles,
            energy_pj: energy,
            edp,
            pnls,
            candidates_explored: explored,
            candidates_pruned: pruned,
            context_generation_attempts: attempts,
            compile_seconds: t0.elapsed().as_secs_f64(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;
    use ptmap_eval::AnalyticalPredictor;
    use ptmap_mapper::map_dfg;

    fn quick_config() -> PtMapConfig {
        PtMapConfig {
            explore: ExploreConfig::quick(),
            ..PtMapConfig::default()
        }
    }

    #[test]
    fn gemm_compiles_end_to_end() {
        let p = ptmap_workloads::micro::gemm(32);
        let ptmap = PtMap::new(Box::new(AnalyticalPredictor), quick_config());
        let report = ptmap.compile(&p, &presets::s4()).unwrap();
        assert!(report.cycles > 0);
        assert!(report.energy_pj > 0.0);
        assert_eq!(report.pnls.len(), 1);
        assert!(report.candidates_explored > 0);
        assert!(report.compile_seconds >= 0.0);
    }

    #[test]
    fn multi_pnl_app_compiles() {
        let p = ptmap_workloads::apps::atax();
        let ptmap = PtMap::new(Box::new(AnalyticalPredictor), quick_config());
        let report = ptmap.compile(&p, &presets::s4()).unwrap();
        assert_eq!(report.pnls.len(), 3);
    }

    #[test]
    fn transformed_beats_untransformed_gemm() {
        // PT-Map's chosen GEMM mapping should beat the identity mapping
        // (the RAMP baseline) on a large array.
        let p = ptmap_workloads::micro::gemm(32);
        let arch = presets::sl8();
        let ptmap = PtMap::new(Box::new(AnalyticalPredictor), PtMapConfig::default());
        let report = ptmap.compile(&p, &arch).unwrap();

        // Identity baseline.
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let m = map_dfg(&dfg, &arch, &MapperConfig::default()).unwrap();
        let base_cycles = m.cycles(nest.pipelined_tripcount())
            * (nest.folded_tripcount() * nest.outer_tripcount());
        assert!(
            report.cycles < base_cycles,
            "PT-Map {} vs baseline {base_cycles}",
            report.cycles
        );
    }

    #[test]
    fn pareto_mode_not_worse_volume_than_performance() {
        let p = ptmap_workloads::micro::gemm(64);
        let arch = presets::s4();
        let mk = |mode| {
            let cfg = PtMapConfig {
                mode,
                explore: ExploreConfig::quick(),
                ..PtMapConfig::default()
            };
            PtMap::new(Box::new(AnalyticalPredictor), cfg)
                .compile(&p, &arch)
                .unwrap()
        };
        let perf = mk(RankMode::Performance);
        let pareto = mk(RankMode::Pareto);
        let vol = |r: &CompileReport| r.pnls.iter().map(|x| x.volume).sum::<u64>();
        assert!(
            vol(&pareto) <= vol(&perf).max(1) * 2,
            "pareto volume {} should not explode vs performance {}",
            vol(&pareto),
            vol(&perf)
        );
    }

    #[test]
    fn instrumented_compile_fills_metrics() {
        let p = ptmap_workloads::micro::gemm(24);
        let ptmap = PtMap::new(Box::new(AnalyticalPredictor), quick_config());
        let (report, m) = ptmap.compile_instrumented(&p, &presets::s4());
        let report = report.unwrap();
        assert_eq!(m.candidates_explored, report.candidates_explored);
        assert_eq!(m.candidates_pruned, report.candidates_pruned);
        assert!(m.explore_seconds >= 0.0 && m.evaluate_seconds > 0.0);
        assert!(m.map_seconds > 0.0, "context generation must be timed");
        assert!(m.mapper_accepts > 0);
        assert!(m.staged_seconds() <= report.compile_seconds * 1.5 + 0.1);
    }

    #[test]
    fn eval_workers_do_not_change_result() {
        let p = ptmap_workloads::micro::gemm(32);
        let arch = presets::s4();
        let mk = |workers| {
            let cfg = PtMapConfig {
                eval_workers: workers,
                ..quick_config()
            };
            PtMap::new(Box::new(AnalyticalPredictor), cfg)
                .compile(&p, &arch)
                .unwrap()
        };
        assert_eq!(mk(1).without_timing(), mk(4).without_timing());
    }

    #[test]
    fn tap_observes_without_changing_results() {
        let p = ptmap_workloads::micro::gemm(24);
        let arch = presets::s4();
        let plain = PtMap::new(Box::new(AnalyticalPredictor), quick_config())
            .compile(&p, &arch)
            .unwrap();
        let tap = std::sync::Arc::new(ptmap_eval::RecordingTap::new());
        let tapped = PtMap::new(Box::new(AnalyticalPredictor), quick_config())
            .with_tap(tap.clone())
            .compile(&p, &arch)
            .unwrap();
        // Observe-only: identical output with and without the tap.
        assert_eq!(plain.without_timing(), tapped.without_timing());
        // And the tap saw every non-identity accepted mapping with
        // self-consistent fields.
        let obs = tap.observations();
        assert!(!obs.is_empty(), "accepted mappings must be tapped");
        for o in &obs {
            assert!(o.actual_ii >= o.mii);
            assert!(o.predicted_ii >= 1);
            assert!(o.tc >= 1);
            assert!(!o.backend.is_empty());
        }
    }

    #[test]
    fn no_pnl_error() {
        let p = ptmap_ir::ProgramBuilder::new("empty").finish();
        let ptmap = PtMap::new(Box::new(AnalyticalPredictor), quick_config());
        assert_eq!(ptmap.compile(&p, &presets::s4()), Err(PtMapError::NoPnl));
    }

    #[test]
    fn governor_variant_displays() {
        assert_eq!(
            PtMapError::Timeout.to_string(),
            "compilation timed out: budget exceeded"
        );
        assert_eq!(PtMapError::Cancelled.to_string(), "compilation cancelled");
        assert_eq!(
            PtMapError::Fault("cache_read".into()).to_string(),
            "injected fault at cache_read"
        );
        use ptmap_governor::BudgetExceeded;
        assert_eq!(
            PtMapError::from(BudgetExceeded::Timeout),
            PtMapError::Timeout
        );
        assert_eq!(
            PtMapError::from(BudgetExceeded::WorkExhausted),
            PtMapError::Timeout
        );
        assert_eq!(
            PtMapError::from(BudgetExceeded::Cancelled),
            PtMapError::Cancelled
        );
    }

    #[test]
    fn cancelled_budget_stops_compilation() {
        let p = ptmap_workloads::micro::gemm(24);
        let ptmap = PtMap::new(Box::new(AnalyticalPredictor), quick_config());
        let budget = ptmap_governor::Budget::cancellable();
        budget.cancel();
        assert_eq!(
            ptmap.compile_budgeted(&p, &presets::s4(), &budget),
            Err(PtMapError::Cancelled)
        );
    }

    #[test]
    fn expired_deadline_times_out_promptly() {
        let p = ptmap_workloads::micro::gemm(24);
        let ptmap = PtMap::new(Box::new(AnalyticalPredictor), quick_config());
        let budget = ptmap_governor::Budget::with_deadline(std::time::Duration::ZERO);
        let t0 = Instant::now();
        assert_eq!(
            ptmap.compile_budgeted(&p, &presets::s4(), &budget),
            Err(PtMapError::Timeout)
        );
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "timeout must cut the search short"
        );
    }

    #[test]
    fn generous_budget_matches_unlimited_result() {
        // A deadline that never fires must not perturb the result: the
        // governor only *observes* until it trips.
        let p = ptmap_workloads::micro::gemm(24);
        let ptmap = PtMap::new(Box::new(AnalyticalPredictor), quick_config());
        let free = ptmap.compile(&p, &presets::s4()).unwrap();
        let budget = ptmap_governor::Budget::with_deadline(std::time::Duration::from_secs(3600));
        let timed = ptmap.compile_budgeted(&p, &presets::s4(), &budget).unwrap();
        assert_eq!(free.without_timing(), timed.without_timing());
    }
}
