//! The `ptmap` command-line compiler.
//!
//! ```text
//! ptmap compile --source kernel.c --arch S4 [--mode pareto]
//!               [--predictor analytical|oracle] [--emit-contexts]
//! ptmap archs
//! ptmap parse --source kernel.c
//! ```
//!
//! `kernel.c` is the C-like `#pragma PTMAP` dialect accepted by
//! `ptmap_ir::parse`. The GNN-assisted flow needs a trained model and is
//! exposed through the library API and the bench harness; the CLI ships
//! with the analytical and oracle predictors, which have no model file.

use ptmap_arch::{presets, CgraArch};
use ptmap_core::{PtMap, PtMapConfig};
use ptmap_eval::{AnalyticalPredictor, IiPredictor, OraclePredictor, RankMode};
use ptmap_ir::dfg::build_dfg;
use ptmap_ir::parse::parse_program;
use ptmap_mapper::{generate_contexts, map_dfg, MapperConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compile") => compile(&args[1..]),
        Some("parse") => parse(&args[1..]),
        Some("archs") => {
            for a in presets::evaluation_suite().iter().chain([&presets::hrea4()]) {
                println!(
                    "{:<6} {}x{} PEs, CB {} contexts, DB {} KiB",
                    a.name(),
                    a.rows(),
                    a.cols(),
                    a.cb_capacity(),
                    a.db_bytes() / 1024
                );
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: ptmap <compile|parse|archs> [options]");
            eprintln!("  compile --source FILE --arch {{S4|R4|H6|SL8|HReA4}}");
            eprintln!("          [--arch-file custom.json]");
            eprintln!("          [--mode {{performance|pareto}}]");
            eprintln!("          [--predictor {{analytical|oracle}}] [--emit-contexts]");
            eprintln!("  parse   --source FILE");
            ExitCode::from(2)
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn load_source(args: &[String]) -> Result<ptmap_ir::Program, String> {
    let path = flag_value(args, "--source").ok_or("missing --source FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("kernel");
    parse_program(name, &text).map_err(|e| format!("{path}: {e}"))
}

fn load_arch(args: &[String]) -> Result<CgraArch, String> {
    if let Some(path) = flag_value(args, "--arch-file") {
        return ptmap_arch::io::load(path).map_err(|e| e.to_string());
    }
    match flag_value(args, "--arch").unwrap_or("S4") {
        "S4" => Ok(presets::s4()),
        "R4" => Ok(presets::r4()),
        "H6" => Ok(presets::h6()),
        "SL8" => Ok(presets::sl8()),
        "HReA4" => Ok(presets::hrea4()),
        other => Err(format!("unknown architecture {other} (see `ptmap archs`)")),
    }
}

fn parse(args: &[String]) -> ExitCode {
    match load_source(args) {
        Ok(p) => {
            println!("{}", p.to_pseudo_c());
            println!("; {} PNLs", p.perfect_nests().len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn compile(args: &[String]) -> ExitCode {
    let result = (|| -> Result<(), String> {
        let program = load_source(args)?;
        let arch = load_arch(args)?;
        let mode = match flag_value(args, "--mode").unwrap_or("performance") {
            "performance" => RankMode::Performance,
            "pareto" => RankMode::Pareto,
            other => return Err(format!("unknown mode {other}")),
        };
        let predictor: Box<dyn IiPredictor> =
            match flag_value(args, "--predictor").unwrap_or("analytical") {
                "analytical" => Box::new(AnalyticalPredictor),
                "oracle" => Box::new(OraclePredictor::default()),
                other => return Err(format!("unknown predictor {other}")),
            };
        let config = PtMapConfig { mode, ..PtMapConfig::default() };
        let ptmap = PtMap::new(predictor, config);
        let report = ptmap.compile(&program, &arch).map_err(|e| e.to_string())?;
        println!("{report}");
        if args.iter().any(|a| a == "--emit-contexts") {
            // Re-map the identity nests to show concrete context images
            // for each PNL of the *original* program (the chosen
            // transformed contexts are embedded in the report's PNLs).
            for (i, nest) in program.perfect_nests().iter().enumerate() {
                let dfg = build_dfg(&program, nest, &[]).map_err(|e| e.to_string())?;
                let mapping = map_dfg(&dfg, &arch, &MapperConfig::default())
                    .map_err(|e| e.to_string())?;
                println!("; ---- PNL {i} (identity mapping) ----");
                println!("{}", generate_contexts(&dfg, &mapping, &arch));
            }
        }
        Ok(())
    })();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
