//! Per-compilation stage metrics.
//!
//! [`PtMap::compile_instrumented`](crate::PtMap::compile_instrumented)
//! fills a [`CompileMetrics`] while it runs, splitting the wall clock
//! across the four pipeline stages (exploration, evaluation, modulo
//! scheduling, simulation) and counting how the search spent its
//! effort. The batch pipeline (`ptmap-pipeline`) aggregates these per
//! job and across a whole manifest.

use serde::{Deserialize, Serialize};

/// Stage timings and effort counters for one compilation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CompileMetrics {
    /// Wall-clock seconds in top-down exploration.
    pub explore_seconds: f64,
    /// Wall-clock seconds in bottom-up evaluation (prediction, memory
    /// profiling, pruning, ranking).
    pub evaluate_seconds: f64,
    /// Wall-clock seconds in the modulo-scheduling back-end (context
    /// generation `map_dfg` calls, including failed attempts).
    pub map_seconds: f64,
    /// Wall-clock seconds simulating accepted mappings (memory
    /// profiling, cycle/energy totals).
    pub simulate_seconds: f64,
    /// Candidates produced by the exploration.
    pub candidates_explored: usize,
    /// Candidates rejected by the CB/DB constraints.
    pub candidates_pruned: usize,
    /// `map_dfg` calls that produced a valid mapping.
    pub mapper_accepts: usize,
    /// `map_dfg` calls rejected by the scheduler.
    pub mapper_rejects: usize,
    /// Accepted mappings that were additionally checked by the mapping
    /// invariant validator (`ptmap_mapper::validate`); nonzero only when
    /// validation is enabled via config or `PTMAP_VALIDATE`.
    #[serde(default)]
    pub mappings_validated: usize,
    /// Ranked program-level choices tried during context generation.
    pub context_generation_attempts: usize,
    /// Mappings produced by the heuristic search (in portfolio mode:
    /// races the heuristic arm won or tied).
    #[serde(default)]
    pub backend_heuristic_wins: usize,
    /// Mappings produced by the exact branch-and-bound search (in
    /// portfolio mode: races it won with a strictly lower II).
    #[serde(default)]
    pub backend_exact_wins: usize,
    /// Mappings whose II was proven optimal (exact infeasibility proof
    /// below it, or landing exactly on the MII).
    #[serde(default)]
    pub exact_optimality_proofs: usize,
    /// Losing portfolio arms cancelled after a winner landed.
    #[serde(default)]
    pub portfolio_cancellations: usize,
    /// Speculative heuristic II-ladder rungs cancelled mid-flight
    /// after a lower II succeeded (0 with speculation off).
    #[serde(default)]
    pub speculative_rungs_cancelled: usize,
    /// Degradations applied to produce this result (e.g. a retry at
    /// reduced effort after a timeout, or an analytical-predictor
    /// fallback after a GNN load failure). Empty for a full-fidelity
    /// compilation; consumers treat any entry as "result is best-effort".
    #[serde(default)]
    pub degradations: Vec<String>,
    /// Compilations that fell back from a GNN predictor to the
    /// analytical model (checkpoint missing/corrupt). A per-compile
    /// 0/1 flag that aggregates into a batch-wide count via
    /// [`absorb`](CompileMetrics::absorb).
    #[serde(default)]
    pub predictor_fallbacks: usize,
    /// Version of the model snapshot the predictor was loaded from,
    /// when it carries provenance (see `GnnPredictor::versioned`);
    /// `None` for analytical/oracle predictors and unversioned
    /// checkpoints. Aggregation keeps the highest version seen.
    #[serde(default)]
    pub model_version: Option<u64>,
}

impl CompileMetrics {
    /// Total instrumented time (sum of the four stages).
    pub fn staged_seconds(&self) -> f64 {
        self.explore_seconds + self.evaluate_seconds + self.map_seconds + self.simulate_seconds
    }

    /// Accumulates another compilation's metrics into `self`.
    pub fn absorb(&mut self, other: &CompileMetrics) {
        self.explore_seconds += other.explore_seconds;
        self.evaluate_seconds += other.evaluate_seconds;
        self.map_seconds += other.map_seconds;
        self.simulate_seconds += other.simulate_seconds;
        self.candidates_explored += other.candidates_explored;
        self.candidates_pruned += other.candidates_pruned;
        self.mapper_accepts += other.mapper_accepts;
        self.mapper_rejects += other.mapper_rejects;
        self.mappings_validated += other.mappings_validated;
        self.context_generation_attempts += other.context_generation_attempts;
        self.backend_heuristic_wins += other.backend_heuristic_wins;
        self.backend_exact_wins += other.backend_exact_wins;
        self.exact_optimality_proofs += other.exact_optimality_proofs;
        self.portfolio_cancellations += other.portfolio_cancellations;
        self.speculative_rungs_cancelled += other.speculative_rungs_cancelled;
        self.degradations.extend(other.degradations.iter().cloned());
        self.predictor_fallbacks += other.predictor_fallbacks;
        self.model_version = self.model_version.max(other.model_version);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = CompileMetrics {
            explore_seconds: 1.0,
            candidates_explored: 3,
            mapper_accepts: 1,
            ..CompileMetrics::default()
        };
        let b = CompileMetrics {
            explore_seconds: 0.5,
            candidates_explored: 2,
            mapper_rejects: 4,
            ..CompileMetrics::default()
        };
        a.absorb(&b);
        assert_eq!(a.explore_seconds, 1.5);
        assert_eq!(a.candidates_explored, 5);
        assert_eq!(a.mapper_accepts, 1);
        assert_eq!(a.mapper_rejects, 4);
        assert!(a.staged_seconds() > 1.49);
    }

    #[test]
    fn absorb_sums_fallbacks_and_keeps_max_model_version() {
        let mut a = CompileMetrics {
            predictor_fallbacks: 1,
            model_version: Some(3),
            ..CompileMetrics::default()
        };
        let b = CompileMetrics {
            predictor_fallbacks: 2,
            model_version: Some(1),
            ..CompileMetrics::default()
        };
        a.absorb(&b);
        assert_eq!(a.predictor_fallbacks, 3);
        assert_eq!(a.model_version, Some(3));
        // None never regresses a known version.
        a.absorb(&CompileMetrics::default());
        assert_eq!(a.model_version, Some(3));
        // A known version upgrades None.
        let mut c = CompileMetrics::default();
        c.absorb(&a);
        assert_eq!(c.model_version, Some(3));
    }
}
