//! End-to-end tests of the `ptmap` command-line compiler.

use std::io::Write;
use std::process::Command;

fn ptmap() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ptmap"))
}

fn write_kernel(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ptmap-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(text.as_bytes()).unwrap();
    path
}

const KERNEL: &str = r#"
    int A[32][32]; int B[32][32]; int C[32][32];
    #pragma PTMAP
    for (i = 0; i < 32; i++) {
        for (j = 0; j < 32; j++) {
            for (k = 0; k < 32; k++) {
                C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }
        }
    }
    #pragma ENDMAP
"#;

#[test]
fn archs_lists_presets() {
    let out = ptmap().arg("archs").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["S4", "R4", "H6", "SL8", "HReA4"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn parse_round_trips() {
    let path = write_kernel("parse.c", KERNEL);
    let out = ptmap().args(["parse", "--source"]).arg(&path).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("for (i = 0; i < 32; i++)"));
    assert!(text.contains("; 1 PNLs"));
}

#[test]
fn compile_reports_cycles() {
    let path = write_kernel("compile.c", KERNEL);
    let out = ptmap()
        .args(["compile", "--source"])
        .arg(&path)
        .args(["--arch", "S4"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cycles"), "{text}");
    assert!(text.contains("PNL 0"));
}

#[test]
fn compile_emit_contexts_disassembles() {
    let path = write_kernel("ctx.c", KERNEL);
    let out = ptmap()
        .args(["compile", "--source"])
        .arg(&path)
        .args(["--arch", "S4", "--emit-contexts"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("context image, II ="));
    assert!(text.contains("mul"));
}

#[test]
fn unknown_arch_fails_cleanly() {
    let path = write_kernel("bad.c", KERNEL);
    let out = ptmap()
        .args(["compile", "--source"])
        .arg(&path)
        .args(["--arch", "Z9"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown architecture"));
}

#[test]
fn parse_error_is_reported() {
    let path = write_kernel("syntax.c", "int A[4]; for (i = 1; i < 4; i++) { A[i] = 0; }");
    let out = ptmap().args(["parse", "--source"]).arg(&path).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("normalized"));
}
