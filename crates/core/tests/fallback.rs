//! Context-generation fallback: PT-Map must emit *something* even when
//! every ranked candidate turns out unmappable.

use ptmap_arch::presets;
use ptmap_core::{PtMap, PtMapConfig};
use ptmap_eval::AnalyticalPredictor;
use ptmap_transform::ExploreConfig;

#[test]
fn harris_on_r4_falls_back_gracefully() {
    // Historically the hard case: heterogeneous R4 makes the MII model's
    // favorite (coarse) candidates unmappable.
    let p = ptmap_workloads::apps::harris();
    let config = PtMapConfig {
        explore: ExploreConfig::quick(),
        ..PtMapConfig::default()
    };
    let report = PtMap::new(Box::new(AnalyticalPredictor), config)
        .compile(&p, &presets::r4())
        .expect("fallback must produce a mapping");
    assert!(report.cycles > 0);
    // The fallback is only taken after exhausting ranked choices.
    assert!(report.context_generation_attempts >= 1);
}

#[test]
fn fallback_equals_ramp_identity() {
    // When the fallback fires, the result must equal the identity
    // realization (RAMP's output).
    let p = ptmap_workloads::apps::harris();
    let arch = presets::r4();
    let config = PtMapConfig {
        explore: ExploreConfig::quick(),
        ..PtMapConfig::default()
    };
    let report = PtMap::new(Box::new(AnalyticalPredictor), config)
        .compile(&p, &arch)
        .unwrap();
    let identity =
        ptmap_core::realize_program(&p, &arch, &Default::default(), &Default::default(), &[])
            .unwrap();
    // Either a ranked candidate mapped (better or equal), or the
    // fallback produced exactly the identity cycles.
    assert!(
        report.cycles <= identity.cycles || report.cycles == identity.cycles,
        "fallback exceeded identity: {} vs {}",
        report.cycles,
        identity.cycles
    );
}
