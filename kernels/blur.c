// Separable 3-tap blur.
int in[64][64];
int tmp[64][64];
int out[64][64];

#pragma PTMAP
for (y = 0; y < 64; y++) {
    for (x = 0; x < 62; x++) {
        tmp[y][x] = in[y][x] + in[y][x + 1] + in[y][x + 2];
    }
}
for (y = 0; y < 62; y++) {
    for (x = 0; x < 62; x++) {
        out[y][x] = tmp[y][x] + tmp[y + 1][x] + tmp[y + 2][x];
    }
}
#pragma ENDMAP
