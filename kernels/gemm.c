// 64x64x64 matrix multiplication in the ptmap C-like dialect.
int A[64][64];
int B[64][64];
int C[64][64];

#pragma PTMAP
for (i = 0; i < 64; i++) {
    for (j = 0; j < 64; j++) {
        for (k = 0; k < 64; k++) {
            C[i][j] = C[i][j] + A[i][k] * B[k][j];
        }
    }
}
#pragma ENDMAP
