//! The [`Deserialize`] trait and impls for std types.

use crate::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Deserialization failure: a human-readable path-less message (the
/// inputs here are small, trusted artifacts — model checkpoints,
/// architecture files, cache entries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a message.
    pub fn new(msg: &str) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Ordered-pair-list lookup used by derived impls.
pub fn obj_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Reconstruction from the serialization value tree.
pub trait Deserialize: Sized {
    /// Deserializes from a [`Value`].
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Arc::new)
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Rc::new)
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

macro_rules! de_int {
    ($($t:ty : $via:ident),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let wide = v
                    .$via()
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(wide).map_err(|_| {
                    DeError::new(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
de_int!(i8: as_i64, i16: as_i64, i32: as_i64, i64: as_i64, isize: as_i64);
de_int!(u8: as_u64, u16: as_u64, u32: as_u64, u64: as_u64, usize: as_u64);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            // serde_json convention: non-finite floats serialize as null.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| DeError::new("expected f64")),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::new("expected null")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        arr.iter().map(T::deserialize).collect()
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
                if arr.len() != $len {
                    return Err(DeError::new(concat!(
                        "expected ", stringify!($len), "-element array"
                    )));
                }
                Ok(($($t::deserialize(&arr[$n])?,)+))
            }
        }
    )+};
}
de_tuple!(
    (1; 0 A),
    (2; 0 A, 1 B),
    (3; 0 A, 1 B, 2 C),
    (4; 0 A, 1 B, 2 C, 3 D)
);

/// Recovers a typed map key from its JSON object-key string: tries the
/// string itself, then its integer reading (mirroring `key_string`).
fn key_from_str<K: Deserialize>(key: &str) -> Result<K, DeError> {
    if let Ok(k) = K::deserialize(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = key.parse::<u64>() {
        if let Ok(k) = K::deserialize(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = key.parse::<i64>() {
        if let Ok(k) = K::deserialize(&Value::Int(i)) {
            return Ok(k);
        }
    }
    if let Ok(b) = key.parse::<bool>() {
        if let Ok(k) = K::deserialize(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(DeError::new("map key has unsupported type"))
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::new("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_str(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::new("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_str(k)?, V::deserialize(v)?)))
            .collect()
    }
}
