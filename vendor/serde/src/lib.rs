//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The build environment has no network access, so this crate (plus
//! `vendor/serde_derive` and `vendor/serde_json`) re-implements the
//! serde surface the workspace uses around a concrete value tree
//! instead of serde's visitor architecture:
//!
//! * [`Serialize`] converts a value into a [`Value`];
//! * [`Deserialize`] reconstructs a value from a [`Value`];
//! * `#[derive(Serialize, Deserialize)]` (re-exported from
//!   `serde_derive`) generates both, honoring `#[serde(skip)]` and
//!   `#[serde(default [= "path"])]`;
//! * `serde_json` renders/parses the [`Value`] tree as JSON text.
//!
//! The trade-off versus real serde is performance (an intermediate
//! tree) and breadth (no zero-copy, no borrowed data, no custom
//! formats), neither of which matters for model checkpoints, result
//! artifacts, architecture files, or the pipeline cache.

pub use serde_derive::{Deserialize, Serialize};

mod de;
mod ser;
mod value;

pub use de::{obj_get, DeError, Deserialize};
pub use ser::Serialize;
pub use value::Value;
