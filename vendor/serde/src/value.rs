//! The serialization value tree.

/// A dynamically typed serialized value (the JSON data model, with
/// integers kept exact). Objects preserve insertion order so derived
/// output is deterministic; key-order canonicalization for hashing is
/// the consumer's job (see `ptmap-pipeline`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (also covers every negative JSON number
    /// without a fraction).
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A binary64 float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: ordered key/value pairs (duplicates are not
    /// produced by derived impls).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => crate::obj_get(m, key),
            _ => None,
        }
    }

    /// Borrow as an object's pair list.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As an `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// As a `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// As an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Recursively sorts every object's keys, producing the canonical
    /// form used for content addressing.
    #[must_use]
    pub fn canonicalize(self) -> Value {
        match self {
            Value::Array(a) => Value::Array(a.into_iter().map(Value::canonicalize).collect()),
            Value::Object(m) => {
                let mut m: Vec<(String, Value)> =
                    m.into_iter().map(|(k, v)| (k, v.canonicalize())).collect();
                m.sort_by(|a, b| a.0.cmp(&b.0));
                Value::Object(m)
            }
            other => other,
        }
    }
}
