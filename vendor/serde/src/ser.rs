//! The [`Serialize`] trait and impls for std types.

use crate::Value;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

/// Conversion into the serialization value tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(v),
                }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        // Exact: every f32 is representable as f64, so the round trip
        // through text recovers the identical f32 bit pattern.
        Value::Float(f64::from(*self))
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
    )+};
}
ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

/// Renders a serialized key as a JSON object key (integers and bools
/// stringify, as in real serde_json). Panics on composite keys — no
/// type in this workspace uses one.
pub(crate) fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a string or integer, got {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.serialize()), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Sort for deterministic output: HashMap iteration order is
        // randomized per process.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.serialize()), v.serialize()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}
