//! JSON rendering.

use serde::Value;
use std::fmt::Write;

/// Renders a value as JSON text, optionally 2-space pretty-printed.
pub fn print(v: &Value, pretty: bool) -> String {
    let mut out = String::new();
    write_value(&mut out, v, pretty, 0);
    out
}

fn write_value(out: &mut String, v: &Value, pretty: bool, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest-round-trip formatting; always a valid
                // JSON number (digits, optional '.', optional exponent).
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, pretty, depth + 1);
                write_value(out, item, pretty, depth + 1);
            }
            newline_indent(out, pretty, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, pretty, depth + 1);
                write_string(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, pretty, depth + 1);
            }
            newline_indent(out, pretty, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, pretty: bool, depth: usize) {
    if pretty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
