//! A recursive-descent JSON parser.

use crate::Error;
use serde::Value;

/// Maximum nesting depth (stack-overflow guard; far beyond anything
/// the workspace serializes).
const MAX_DEPTH: usize = 256;

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos after the 4 digits; the
                            // shared increment below is skipped.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this
                    // is always well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = &self.bytes[self.pos..self.pos + 4];
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}
