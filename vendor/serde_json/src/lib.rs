//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde` [`Value`] tree as JSON text.
//!
//! Guarantees relied upon elsewhere in the workspace:
//!
//! * output is deterministic (object order is whatever the `Value`
//!   holds — derived impls emit declaration order, and the pipeline
//!   cache canonicalizes by sorting keys);
//! * floats print with Rust's shortest-round-trip formatting, so
//!   `serialize → to_string → from_str → deserialize` reproduces every
//!   finite `f64`/`f32` exactly (non-finite floats become `null`, as
//!   in real serde_json);
//! * integers stay exact across the full `i64`/`u64` range.

mod parse;
mod print;

pub use serde::Value;

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::print(&value.serialize(), false))
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::print(&value.serialize(), true))
}

/// Converts a value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Reconstructs a value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::deserialize(value)?)
}

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let v = parse::parse(text)?;
    Ok(T::deserialize(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("0.25").unwrap(), 0.25);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_extreme_integers() {
        for v in [u64::MAX, i64::MAX as u64 + 1, 0] {
            assert_eq!(from_str::<u64>(&to_string(&v).unwrap()).unwrap(), v);
        }
        for v in [i64::MIN, -1, i64::MAX] {
            assert_eq!(from_str::<i64>(&to_string(&v).unwrap()).unwrap(), v);
        }
    }

    #[test]
    fn roundtrip_floats_exact() {
        for v in [1.0e300, -2.5e-7, 0.1, 3.0, f64::MIN_POSITIVE] {
            assert_eq!(from_str::<f64>(&to_string(&v).unwrap()).unwrap(), v);
        }
        for v in [0.1f32, -7.25e-3, 3.4e38] {
            assert_eq!(from_str::<f32>(&to_string(&v).unwrap()).unwrap(), v);
        }
        // Non-finite floats degrade to null → NaN.
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn roundtrip_collections() {
        let v: Vec<(String, Option<u32>)> = vec![("a".into(), Some(1)), ("b".into(), None)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[\"a\",1],[\"b\",null]]");
        assert_eq!(from_str::<Vec<(String, Option<u32>)>>(&text).unwrap(), v);
    }

    #[test]
    fn pretty_print_shape() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn string_escapes() {
        let s = "quote \" slash \\ newline \n tab \t nul \u{0} high \u{1F600}";
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
