//! Value-generation strategies.

use crate::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics when empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Canonical distributions for `any::<T>()`.
pub trait Arbitrary {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for `any::<T>()`.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The canonical strategy for a type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident . $n:tt),+)),+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);
