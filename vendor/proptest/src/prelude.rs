//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
pub use crate::{
    prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, ProptestConfig, TestCaseError,
};

/// Namespace alias so `prop::collection::vec(...)` works.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
