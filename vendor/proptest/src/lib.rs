//! Offline stand-in for [`proptest`](https://proptest-rs.github.io).
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range and tuple
//! strategies, `prop_map`, [`Just`], `any::<bool>()`,
//! `proptest::collection::vec`, [`prop_oneof!`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports its inputs and panics;
//! * cases are drawn from a deterministic per-test RNG (seeded from
//!   the test's module path and name, overridable with
//!   `PTMAP_PROPTEST_SEED`), so CI runs are reproducible.

pub mod collection;
pub mod prelude;
pub mod strategy;

pub use strategy::{any, AnyStrategy, BoxedStrategy, Just, Map, Strategy, Union};

use rand::SeedableRng;

/// The RNG driving case generation.
pub type TestRng = rand::rngs::StdRng;

/// Per-test deterministic RNG; `name` should be unique per test.
pub fn rng_for(name: &str) -> TestRng {
    // FNV-1a over the test name, mixed with an optional env seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if let Ok(extra) = std::env::var("PTMAP_PROPTEST_SEED") {
        if let Ok(seed) = extra.parse::<u64>() {
            h ^= seed.rotate_left(17);
        }
    }
    TestRng::seed_from_u64(h)
}

/// Test-runner configuration (the `cases` knob is the only one the
/// workspace sets; the rest exist for struct-update compatibility).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Upper bound on rejected (`prop_assume!`) cases before the test
    /// fails as vacuous.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
    /// An assertion failed; abort the test.
    Fail(String),
}

/// The workhorse macro: declares `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &__cfg,
                    |__rng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                        let __case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        __case()
                    },
                );
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Drives one property: draws cases until `cases` accepted runs pass.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = rng_for(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{name}: too many prop_assume! rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {accepted} cases: {msg}")
            }
        }
    }
}

/// Asserts inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} != {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Rejects the current case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between heterogeneous strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(a in -8i64..8, b in 1u32..5) {
            prop_assert!((-8..8).contains(&a));
            prop_assert!((1..5).contains(&b));
        }

        #[test]
        fn assume_rejects(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((0u64..10, 0u64..10), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0u32..4).prop_map(|v| v as u64),
            Just(99u64),
            any::<bool>().prop_map(|b| b as u64),
        ]) {
            prop_assert!(x < 4 || x == 99);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        crate::run_cases(
            "failing_property",
            &crate::ProptestConfig {
                cases: 4,
                ..Default::default()
            },
            |_| Err(crate::TestCaseError::Fail("boom".into())),
        );
    }
}
