//! Collection strategies.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// Vectors of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "proptest::collection::vec: empty size range"
    );
    VecStrategy { element, size }
}

/// The result of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
