//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access, so
//! every external dependency is vendored as a minimal, std-only
//! re-implementation of exactly the API surface the workspace uses.
//! This crate covers:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator;
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion;
//! * [`Rng::gen_range`] over half-open and inclusive integer/float
//!   ranges, [`Rng::gen_bool`], and [`Rng::gen`];
//! * [`seq::SliceRandom::shuffle`] and [`seq::SliceRandom::choose`].
//!
//! Determinism is part of the contract: the same seed always yields the
//! same stream, on every platform, which the mapper's perturbation
//! search and the GNN training pipeline rely on for reproducibility.

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a type with a canonical uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a float in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a canonical uniform distribution (the subset of rand's
/// `Standard` the workspace needs).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges a value can be sampled from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded sampling via 128-bit multiply (Lemire).
pub(crate) fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Types samplable from `start..end` / `start..=end` bounds. The
/// [`SampleRange`] impls are blanket impls over this trait so type
/// inference unifies the range's element type with `gen_range`'s
/// return type (matching real rand's behavior for integer literals).
pub trait SampleBound: Copy {
    /// Uniform draw from `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(
        start: Self,
        end: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_sample_bound {
    ($($t:ty),*) => {$(
        impl SampleBound for $t {
            fn sample_between<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(start <= end, "gen_range: empty range");
                    let span = end.wrapping_sub(start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(bounded_u64(rng, span + 1) as $t)
                } else {
                    assert!(start < end, "gen_range: empty range");
                    let span = end.wrapping_sub(start) as u64;
                    start.wrapping_add(bounded_u64(rng, span) as $t)
                }
            }
        }
    )*};
}

int_sample_bound!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_bound {
    ($($t:ty),*) => {$(
        impl SampleBound for $t {
            fn sample_between<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(start < end, "gen_range: empty range");
                start + (end - start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_sample_bound!(f32, f64);

impl<T: SampleBound> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleBound> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn bounded_covers_all_residues() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
