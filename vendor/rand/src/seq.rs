//! Sequence-related extensions.

use crate::{bounded_u64, RngCore};

/// Random slice operations (the `shuffle`/`choose` subset).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = bounded_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[bounded_u64(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_empty_none() {
        let mut rng = StdRng::seed_from_u64(0);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
        assert!([1, 2, 3].choose(&mut rng).is_some());
    }
}
