//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides `criterion_group!` / `criterion_main!` /
//! [`Criterion::bench_function`] with a simple fixed-budget timing loop
//! (median of per-iteration wall times) printed to stdout. No
//! statistical analysis, HTML reports, or CLI filtering — the bench
//! binaries here are smoke benchmarks whose numbers are read off the
//! terminal.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Wall-clock budget per benchmark.
    measure_budget: Duration,
    /// Hard cap on measured iterations.
    max_iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_budget: Duration::from_millis(500),
            max_iters: 50,
        }
    }
}

impl Criterion {
    /// Caps the number of measured iterations (builder style, mirroring
    /// the real crate's configuration API).
    #[must_use]
    pub fn sample_size(mut self, n: u32) -> Self {
        self.max_iters = n;
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        // Warm-up run (also catches panics early with a clear name).
        f(&mut b);
        b.samples.clear();
        let start = Instant::now();
        let mut iters = 0;
        while iters < self.max_iters && start.elapsed() < self.measure_budget {
            f(&mut b);
            iters += 1;
        }
        b.samples.sort_unstable();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        println!(
            "bench {name:<40} median {:>12.3?} ({} samples)",
            median,
            b.samples.len()
        );
        self
    }
}

/// Passed to the closure of [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs the measured routine once, recording its wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.samples.push(t0.elapsed());
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a set of groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
