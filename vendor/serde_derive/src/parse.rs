//! Token-stream parser for the derive input: just enough Rust item
//! grammar to recover names, field lists, and `#[serde(...)]` field
//! attributes. Types are skipped, not parsed — the generated code is
//! fully type-directed through trait resolution, so only the *shape*
//! of the item matters here.

use crate::{is_group, is_punct};
use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled during deserialization.
#[derive(Clone, Debug)]
pub enum DefaultAttr {
    /// No default: a missing field is an error.
    None,
    /// `#[serde(default)]` — `Default::default()`.
    Std,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

/// One named field.
pub struct Field {
    pub name: String,
    pub skip: bool,
    pub default: DefaultAttr,
}

/// The field shape of a struct or enum variant.
pub enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

/// One enum variant.
pub struct Variant {
    pub name: String,
    pub fields: Fields,
}

pub enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

pub struct Item {
    pub name: String,
    pub kind: ItemKind,
}

/// Parses a `struct`/`enum` item from the derive input.
pub fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Outer attributes and visibility before the item keyword.
    let keyword = loop {
        match toks.get(i) {
            Some(t) if is_punct(t, '#') => {
                i += 1; // the attribute body group
                if toks.get(i).is_some_and(|t| is_group(t, Delimiter::Bracket)) {
                    i += 1;
                } else {
                    return Err("expected attribute body after #".into());
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if toks
                    .get(i)
                    .is_some_and(|t| is_group(t, Delimiter::Parenthesis))
                {
                    i += 1; // pub(crate) etc.
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                let kw = id.to_string();
                i += 1;
                break kw;
            }
            other => {
                return Err(format!(
                    "serde stand-in derive: unexpected token before item keyword: {other:?}"
                ))
            }
        }
    };
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if toks.get(i).is_some_and(|t| is_punct(t, '<')) {
        return Err(format!(
            "serde stand-in derive: generic type `{name}` is not supported \
             (see vendor/serde_derive)"
        ));
    }
    if keyword == "struct" {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: ItemKind::Struct(Fields::Named(parse_named_fields(g.stream())?)),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                kind: ItemKind::Struct(Fields::Tuple(count_tuple_fields(g.stream()))),
            }),
            Some(t) if is_punct(t, ';') => Ok(Item {
                name,
                kind: ItemKind::Struct(Fields::Unit),
            }),
            other => Err(format!("expected struct body, found {other:?}")),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: ItemKind::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        }
    }
}

/// Parses `name: Type` fields with attributes; types are skipped with
/// angle-bracket depth tracking (commas inside `<...>` or any group do
/// not terminate a field).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (skip, default) = parse_field_attrs(&toks, &mut i)?;
        match toks.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if toks
                    .get(i)
                    .is_some_and(|t| is_group(t, Delimiter::Parenthesis))
                {
                    i += 1;
                }
            }
            _ => {}
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => {
                i += 1;
                id.to_string()
            }
            other => return Err(format!("expected field name, found {other:?}")),
        };
        if !toks.get(i).is_some_and(|t| is_punct(t, ':')) {
            return Err(format!("expected `:` after field {name}"));
        }
        i += 1;
        skip_type(&toks, &mut i);
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    Ok(fields)
}

/// Consumes attributes before a field/variant, extracting
/// `#[serde(skip)]` / `#[serde(default)]` / `#[serde(default = "p")]`.
fn parse_field_attrs(toks: &[TokenTree], i: &mut usize) -> Result<(bool, DefaultAttr), String> {
    let mut skip = false;
    let mut default = DefaultAttr::None;
    while toks.get(*i).is_some_and(|t| is_punct(t, '#')) {
        *i += 1;
        let body = match toks.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g.stream(),
            other => return Err(format!("expected attribute body, found {other:?}")),
        };
        *i += 1;
        let inner: Vec<TokenTree> = body.into_iter().collect();
        let is_serde = matches!(
            inner.first(),
            Some(TokenTree::Ident(id)) if id.to_string() == "serde"
        );
        if !is_serde {
            continue; // doc comment, #[default], etc.
        }
        let args = match inner.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            other => return Err(format!("malformed #[serde] attribute: {other:?}")),
        };
        let args: Vec<TokenTree> = args.into_iter().collect();
        let mut j = 0;
        while j < args.len() {
            match &args[j] {
                TokenTree::Ident(id) if id.to_string() == "skip" => {
                    skip = true;
                    j += 1;
                }
                TokenTree::Ident(id) if id.to_string() == "default" => {
                    j += 1;
                    if args.get(j).is_some_and(|t| is_punct(t, '=')) {
                        j += 1;
                        match args.get(j) {
                            Some(TokenTree::Literal(lit)) => {
                                let raw = lit.to_string();
                                let path = raw.trim_matches('"').to_string();
                                default = DefaultAttr::Path(path);
                                j += 1;
                            }
                            other => {
                                return Err(format!(
                                    "expected string after default =, found {other:?}"
                                ))
                            }
                        }
                    } else {
                        default = DefaultAttr::Std;
                    }
                }
                t if is_punct(t, ',') => j += 1,
                other => {
                    return Err(format!(
                        "serde stand-in derive: unsupported #[serde] option {other:?} \
                         (only skip/default are implemented)"
                    ))
                }
            }
        }
    }
    Ok((skip, default))
}

/// Advances past a type, stopping after the field-separating comma (or
/// at end of stream). Tracks `<`/`>` depth so commas inside generics
/// don't split the field; parenthesized/bracketed sub-tokens arrive as
/// atomic groups and need no special handling.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i64;
    while *i < toks.len() {
        let t = &toks[*i];
        *i += 1;
        if is_punct(t, '<') {
            angle += 1;
        } else if is_punct(t, '>') {
            angle -= 1;
        } else if is_punct(t, ',') && angle == 0 {
            break;
        }
    }
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        // Each skip_type call consumes one field (attrs/vis included in
        // the skipped tokens — they contain no top-level commas).
        skip_type(&toks, &mut i);
        count += 1;
    }
    count
}

/// Parses enum variants (attributes such as `#[default]` are skipped).
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let _ = parse_field_attrs(&toks, &mut i)?;
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => {
                i += 1;
                id.to_string()
            }
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        if toks.get(i).is_some_and(|t| is_punct(t, ',')) {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}
