//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the vendored `serde` crate's value-tree model (see
//! `vendor/serde`). The input item is parsed directly from the token
//! stream — no `syn`/`quote`, since the build environment has no
//! network access — and the generated impls are emitted as source text.
//!
//! Supported shapes (the full set used by this workspace):
//!
//! * structs with named fields, tuple structs (newtype and n-ary),
//!   unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   like real serde);
//! * field attributes `#[serde(skip)]`, `#[serde(default)]`, and
//!   `#[serde(default = "path")]`, in any combination.
//!
//! Generic types are intentionally unsupported and produce a compile
//! error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{DefaultAttr, Fields, Item, ItemKind};

/// Derives `serde::Serialize` (value-tree flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (value-tree flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let item = match parse::parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});")
                .parse()
                .expect("error tokens")
        }
    };
    gen(&item).parse().expect("generated impl must parse")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => struct_ser_body(name, fields),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from({vn:?})),\n"
                        ));
                    }
                    Fields::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Serialize::serialize(__f0))]),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Value::Array(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                        let pairs: Vec<String> = fs
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({:?}), \
                                     ::serde::Serialize::serialize({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Value::Object(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            pairs.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn struct_ser_body(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Fields::Named(fs) => {
            let pairs: Vec<String> = fs
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(::std::string::String::from({:?}), \
                         ::serde::Serialize::serialize(&self.{}))",
                        f.name, f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => struct_de_body(name, fields, &format!("{name} ")),
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    Fields::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(__inner)?)),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                                 let __arr = match __inner {{\n\
                                     ::serde::Value::Array(a) if a.len() == {n} => a,\n\
                                     _ => return ::std::result::Result::Err(\
                                          ::serde::DeError::new(\
                                          \"{name}::{vn}: expected {n}-element array\")),\n\
                                 }};\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }}\n",
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let inner = struct_de_fields(name, fs, &format!("{name}::{vn}"));
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                                 let __obj = match __inner {{\n\
                                     ::serde::Value::Object(m) => m,\n\
                                     _ => return ::std::result::Result::Err(\
                                          ::serde::DeError::new(\
                                          \"{name}::{vn}: expected object\")),\n\
                                 }};\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {inner} }})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::DeError::new(\
                             &::std::format!(\"{name}: unknown variant {{__other}}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __inner) = &__m[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\
                             __other => ::std::result::Result::Err(::serde::DeError::new(\
                                 &::std::format!(\"{name}: unknown variant {{__other}}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::DeError::new(\
                          \"{name}: expected variant string or single-key object\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}

/// Deserialization body for a struct-shaped item; `ctor` is the
/// constructor path written before the braces/parens.
fn struct_de_body(name: &str, fields: &Fields, ctor: &str) -> String {
    match fields {
        Fields::Unit => format!("::std::result::Result::Ok({ctor})"),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({ctor}(::serde::Deserialize::deserialize(__v)?))")
        }
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = match __v {{\n\
                     ::serde::Value::Array(a) if a.len() == {n} => a,\n\
                     _ => return ::std::result::Result::Err(::serde::DeError::new(\
                          \"{name}: expected {n}-element array\")),\n\
                 }};\n\
                 ::std::result::Result::Ok({ctor}({}))",
                elems.join(", ")
            )
        }
        Fields::Named(fs) => {
            let inner = struct_de_fields(name, fs, name);
            format!(
                "let __obj = match __v {{\n\
                     ::serde::Value::Object(m) => m,\n\
                     _ => return ::std::result::Result::Err(::serde::DeError::new(\
                          \"{name}: expected object\")),\n\
                 }};\n\
                 ::std::result::Result::Ok({ctor} {{ {inner} }})"
            )
        }
    }
}

/// `field: <expr>` initializers for a named-field (struct or variant)
/// body, honoring `skip`/`default` attributes.
fn struct_de_fields(type_name: &str, fs: &[parse::Field], what: &str) -> String {
    let mut out = String::new();
    for f in fs {
        let fname = &f.name;
        let missing = match &f.default {
            DefaultAttr::Path(p) => format!("{p}()"),
            DefaultAttr::Std => "::std::default::Default::default()".to_string(),
            DefaultAttr::None => format!(
                "return ::std::result::Result::Err(::serde::DeError::new(\
                 \"{what}: missing field {fname}\"))"
            ),
        };
        let expr = if f.skip {
            match &f.default {
                DefaultAttr::Path(p) => format!("{p}()"),
                _ => "::std::default::Default::default()".to_string(),
            }
        } else {
            format!(
                "match ::serde::obj_get(__obj, {fname:?}) {{\n\
                     ::std::option::Option::Some(__x) => \
                         ::serde::Deserialize::deserialize(__x)?,\n\
                     ::std::option::Option::None => {missing},\n\
                 }}"
            )
        };
        out.push_str(&format!("{fname}: {expr},\n"));
    }
    let _ = type_name;
    out
}

/// Shared token utilities used by the parser.
pub(crate) fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

pub(crate) fn is_group(t: &TokenTree, d: Delimiter) -> bool {
    matches!(t, TokenTree::Group(g) if g.delimiter() == d)
}
