//! The GNN-assisted flow: generate a synthetic dataset with the mapper
//! as labeler, train the predictive model, and use it inside PT-Map.
//!
//! ```sh
//! cargo run --release --example train_gnn
//! ```
//!
//! (Scaled down from the paper's 400k-sample/300-epoch setup; pass a
//! larger first argument for more samples.)

use pt_map::arch::presets;
use pt_map::core::{PtMap, PtMapConfig};
use pt_map::eval::GnnPredictor;
use pt_map::gnn::dataset::{generate_dataset, DatasetConfig};
use pt_map::gnn::model::{ModelConfig, PtMapGnn};
use pt_map::gnn::train::{mape_cycles, mape_cycles_mii, train, TrainConfig};
use pt_map::workloads::micro;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);

    println!("generating {samples} labeled samples (mapper as labeler)...");
    let data = generate_dataset(&DatasetConfig {
        samples,
        archs: presets::evaluation_suite(),
        ..DatasetConfig::default()
    });
    let split = data.len() * 4 / 5;
    let (train_set, test_set) = data.split_at(split);

    println!(
        "training ({} train / {} test)...",
        train_set.len(),
        test_set.len()
    );
    let mut model = PtMapGnn::new(ModelConfig::default());
    train(&mut model, train_set, &TrainConfig::default());

    println!(
        "MII analytical model MAPE: {:.1}%",
        mape_cycles_mii(test_set)
    );
    println!(
        "GNN model MAPE:            {:.1}%",
        mape_cycles(&model, test_set)
    );

    // Use the trained model inside the full pipeline.
    let program = micro::gemm(64);
    let arch = presets::sl8();
    let ptmap = PtMap::new(Box::new(GnnPredictor::new(model)), PtMapConfig::default());
    let report = ptmap.compile(&program, &arch)?;
    println!("\nGNN-assisted compilation:\n{report}");
    Ok(())
}
