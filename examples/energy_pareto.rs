//! Energy/performance trade-off: run PT-Map in performance and Pareto
//! modes across data-buffer capacities (the Fig. 8 mechanism, one app).
//!
//! ```sh
//! cargo run --release --example energy_pareto
//! ```

use pt_map::arch::presets;
use pt_map::core::{PtMap, PtMapConfig};
use pt_map::eval::{AnalyticalPredictor, RankMode};
use pt_map::workloads::apps;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = apps::covariance();
    let base = presets::s4();
    println!("app: {} on {}", program.name, base.name());
    println!(
        "\n{:<14} {:<12} {:>12} {:>14} {:>14}",
        "DB capacity", "mode", "cycles", "energy (pJ)", "EDP"
    );
    for db_mult in [1u64, 2] {
        let arch = base.with_db_bytes(base.db_bytes() * db_mult);
        for mode in [RankMode::Performance, RankMode::Pareto] {
            let config = PtMapConfig {
                mode,
                ..PtMapConfig::default()
            };
            let report =
                PtMap::new(Box::new(AnalyticalPredictor), config).compile(&program, &arch)?;
            println!(
                "{:<14} {:<12} {:>12} {:>14.3e} {:>14.3e}",
                format!("{} KiB", arch.db_bytes() / 1024),
                format!("{mode:?}"),
                report.cycles,
                report.energy_pj,
                report.edp
            );
        }
    }
    println!("\nPareto mode trades a few cycles for less off-CGRA traffic;");
    println!("larger DBs let coarser tiles stay on chip, lowering EDP further.");
    Ok(())
}
