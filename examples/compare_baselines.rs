//! Compare PT-Map against every baseline of the paper on one app.
//!
//! ```sh
//! cargo run --release --example compare_baselines [APP] [ARCH]
//! ```
//!
//! APP is one of GEM/TRI/COV/DOI/TMM/ATA/BLU/HAR/CON/TCO/WIN (default
//! TMM); ARCH is one of S4/R4/H6/SL8 (default SL8).

use pt_map::arch::presets;
use pt_map::baselines::{Al, Am, Baseline, Ip, Lisa, MapZero, Pbp, Ramp};
use pt_map::core::{PtMap, PtMapConfig};
use pt_map::eval::AnalyticalPredictor;
use pt_map::workloads::apps;

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "TMM".into());
    let arch_name = std::env::args().nth(2).unwrap_or_else(|| "SL8".into());
    let program = apps::all()
        .into_iter()
        .find(|(n, _)| *n == app)
        .map(|(_, p)| p)
        .unwrap_or_else(|| panic!("unknown app {app}"));
    let arch = match arch_name.as_str() {
        "S4" => presets::s4(),
        "R4" => presets::r4(),
        "H6" => presets::h6(),
        "SL8" => presets::sl8(),
        other => panic!("unknown architecture {other}"),
    };
    println!("app {app} on {arch}");
    println!(
        "{:<10} {:>14} {:>10} {:>12}",
        "mapper", "cycles", "speedup", "compile (s)"
    );

    let baselines: Vec<Box<dyn Baseline>> = vec![
        Box::new(Ramp::default()),
        Box::new(Lisa::default()),
        Box::new(MapZero::default()),
        Box::new(Ip::default()),
        Box::new(Pbp::default()),
        Box::new(Al::default()),
        Box::new(Am::default()),
    ];
    let mut ramp_cycles = None;
    for b in &baselines {
        match b.run(&program, &arch) {
            Ok(r) => {
                if b.name() == "RAMP" {
                    ramp_cycles = Some(r.cycles);
                }
                let speedup = ramp_cycles
                    .map(|rc| format!("{:.2}x", rc as f64 / r.cycles as f64))
                    .unwrap_or_default();
                println!(
                    "{:<10} {:>14} {:>10} {:>12.2}",
                    b.name(),
                    r.cycles,
                    speedup,
                    r.compile_seconds
                );
            }
            Err(e) => println!("{:<10} {:>14}", b.name(), format!("fail ({e})")),
        }
    }
    // PT-Map itself (analytical predictor for a dependency-free demo;
    // the bench harness trains and uses the GNN).
    let ptmap = PtMap::new(Box::new(AnalyticalPredictor), PtMapConfig::default());
    match ptmap.compile(&program, &arch) {
        Ok(r) => {
            let speedup = ramp_cycles
                .map(|rc| format!("{:.2}x", rc as f64 / r.cycles as f64))
                .unwrap_or_default();
            println!(
                "{:<10} {:>14} {:>10} {:>12.2}",
                "PT-Map", r.cycles, speedup, r.compile_seconds
            );
        }
        Err(e) => println!("{:<10} {:>14}", "PT-Map", format!("fail ({e})")),
    }
}
