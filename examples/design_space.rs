//! Design-space walk: enumerate GEMM transformation candidates, profile
//! them bottom-up, and compare predicted against actually-mapped IIs.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use pt_map::arch::presets;
use pt_map::eval::{evaluate_candidate, AnalyticalPredictor};
use pt_map::ir::dfg::build_dfg;
use pt_map::mapper::{map_dfg, MapperConfig};
use pt_map::transform::{explore, ExploreConfig};
use pt_map::workloads::micro;

fn main() {
    let program = micro::gemm(64);
    let arch = presets::sl8();
    let forest = explore(&program, &ExploreConfig::default());
    println!(
        "exploration: {} variants, {} candidates total",
        forest.variants.len(),
        forest.candidate_count()
    );

    let candidates = &forest.variants[0].pnl_candidates[0];
    println!(
        "\n{:<52} {:>7} {:>8} {:>9} {:>10}",
        "transformation", "MII", "pred II", "real II", "cycles"
    );
    let mapper = MapperConfig::default();
    for c in candidates.iter().take(16) {
        let e = evaluate_candidate(c, &arch, &AnalyticalPredictor);
        let real = build_dfg(&c.program, &c.nest, &c.unroll)
            .ok()
            .and_then(|dfg| map_dfg(&dfg, &arch, &mapper).ok());
        let real_ii = real
            .map(|m| m.ii.to_string())
            .unwrap_or_else(|| "fail".into());
        let pruned = e.pruned.map(|_| " (pruned)").unwrap_or("");
        println!(
            "{:<52} {:>7} {:>8} {:>9} {:>10}{pruned}",
            truncate(&c.desc, 52),
            e.mii,
            e.ii,
            real_ii,
            e.cycles
        );
    }
    println!("\nNote how the MII prediction diverges from the real II as the");
    println!("unroll factor grows — the paper's Fig. 2b effect, and the");
    println!("reason PT-Map replaces the analytical model with a GNN.");
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}
