//! Quickstart: compile a kernel with PT-Map and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pt_map::arch::presets;
use pt_map::core::{PtMap, PtMapConfig};
use pt_map::eval::AnalyticalPredictor;
use pt_map::ir::ProgramBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the kernel — the region a `#pragma PTMAP` would wrap.
    //    Here: a 64x64x64 matrix multiplication.
    let n = 64;
    let mut b = ProgramBuilder::new("gemm");
    let a = b.array("A", &[n, n]);
    let bm = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    let i = b.open_loop("i", n);
    let j = b.open_loop("j", n);
    let k = b.open_loop("k", n);
    let prod = b.mul(
        b.load(a, &[b.idx(i), b.idx(k)]),
        b.load(bm, &[b.idx(k), b.idx(j)]),
    );
    let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
    b.store(c, &[b.idx(i), b.idx(j)], sum);
    b.close_loop();
    b.close_loop();
    b.close_loop();
    let program = b.finish();
    println!("{}", program.to_pseudo_c());

    // 2. Pick a CGRA — the paper's 4x4 standard architecture.
    let arch = presets::s4();
    println!("target: {arch}");

    // 3. Compile. The analytical predictor keeps the quickstart fast;
    //    see examples/train_gnn.rs for the GNN-assisted flow.
    let ptmap = PtMap::new(Box::new(AnalyticalPredictor), PtMapConfig::default());
    let report = ptmap.compile(&program, &arch)?;
    println!("{report}");

    // 4. Compare with the untransformed mapping (what RAMP would do).
    let baseline = pt_map::core::realize_program(
        &program,
        &arch,
        &Default::default(),
        &Default::default(),
        &[],
    )?;
    println!(
        "speedup over untransformed mapping: {:.2}x",
        baseline.cycles as f64 / report.cycles as f64
    );
    Ok(())
}
