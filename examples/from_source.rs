//! Compile straight from C-like source, the paper's input format: a
//! `#pragma PTMAP` region is parsed, explored, and mapped.
//!
//! ```sh
//! cargo run --release --example from_source
//! ```

use pt_map::arch::presets;
use pt_map::core::{PtMap, PtMapConfig};
use pt_map::eval::AnalyticalPredictor;
use pt_map::ir::parse::parse_program;

const SOURCE: &str = r#"
    int in[64][64];
    int tmp[64][64];
    int out[64][64];

    #pragma PTMAP
    for (y = 0; y < 64; y++) {
        for (x = 0; x < 62; x++) {
            tmp[y][x] = in[y][x] + in[y][x + 1] + in[y][x + 2];
        }
    }
    for (y = 0; y < 62; y++) {
        for (x = 0; x < 62; x++) {
            out[y][x] = tmp[y][x] + tmp[y + 1][x] + tmp[y + 2][x];
        }
    }
    #pragma ENDMAP
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program("blur2d", SOURCE)?;
    println!("parsed {} PNLs from source:", program.perfect_nests().len());
    println!("{}", program.to_pseudo_c());

    let arch = presets::h6();
    let ptmap = PtMap::new(Box::new(AnalyticalPredictor), PtMapConfig::default());
    let report = ptmap.compile(&program, &arch)?;
    println!("{report}");
    Ok(())
}
