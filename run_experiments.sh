#!/bin/sh
# Regenerates every table and figure of the evaluation into results/.
set -e
for bin in fig2a fig2b tab5 fig6 fig7 fig8 tab6 fig9 generality ablations; do
  echo "=== $bin ==="
  cargo run --release -p ptmap-bench --bin $bin
done
